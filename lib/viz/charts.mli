(** Figure builders: telemetry formats in, {!Plot.chart} out.

    Each builder folds one of the existing telemetry formats — decoded
    {!Telemetry.Events} streams, {!Telemetry.Timeline} summaries, a
    {!Telemetry.Metrics} JSON dump — into one of the paper's figures.
    Builders are total: empty or degenerate inputs produce a valid chart
    (with a "no data" face or an explanatory note), never an exception,
    because they run over whatever a CI soak or a crashed run left
    behind. Everything is deterministic in the input bytes; golden tests
    hold the rendered SVGs byte for byte. *)

val slope_points :
  ?title:string -> (string * (float * float * float) list) list -> Plot.chart
(** The slope chart from already-aggregated points: one (label, points)
    per series with points [(n, mean, ci95_halfwidth)]. Series with at
    least two distinct sizes get the dashed log-log regression overlay
    and a slope/r² note. [Exp_table1] feeds its measurements here
    directly; {!slope_fit} goes through an event stream. *)

val slope_fit :
  ?title:string -> (Telemetry.Events.run * Engine.Instrument.event) list -> Plot.chart
(** Table-1 style log-log scaling plot. Runs are grouped into series by
    (protocol, engine); each run contributes its final convergence time
    ([last_correct_at]) at its population size, aggregated per n into
    mean ± 95% CI error bars. Series with at least two distinct sizes get
    a dashed least-squares overlay ([Stats.Regression.log_log]) and a
    slope/r² note — the empirical counterpart of the paper's Θ(n²)/Θ(n)
    /Θ(√n) claims. Unconverged runs are skipped. *)

val availability :
  ?title:string -> ?x_label:string -> (string * (float * float) list) list -> Plot.chart
(** Availability-vs-offered-load curves, one series per (label, points)
    with points [(load, availability)]. Log x (loads sweep decades),
    linear y pinned to [0, 1.05]. The caller aggregates availability per
    load point — see {!mean_availability} and [Exp_chaos]. *)

val mean_availability : Telemetry.Timeline.summary list -> float
(** Mean of {!Telemetry.Timeline.availability} over the summaries (0 for
    an empty list) — one soak events file folded to one availability
    sample. *)

val recovery_samples : ?title:string -> (string * float list * int) list -> Plot.chart
(** The recovery CDF from already-pooled samples: one (label, recovered
    times, censored count) per series. Series with no recoveries drop to
    a note instead of an empty step. [Exp_chaos] feeds its soak reports
    here; {!recovery_cdf} goes through an event stream. *)

val recovery_cdf :
  ?title:string -> (Telemetry.Events.run * Engine.Instrument.event) list -> Plot.chart
(** Empirical CDF of burst recovery times, one step series per
    (protocol, engine), pooled over the stream's runs. Only bursts that
    broke correctness and recovered contribute; censored bursts are
    reported in the per-series note. *)

val has_spans : Telemetry.Json.t -> bool
(** Whether a parsed metrics dump contains any [span.*] histogram, i.e.
    whether {!phase_profile} would have bars rather than a "no data"
    face. *)

val phase_profile : ?title:string -> Telemetry.Json.t -> Plot.chart
(** Per-phase wall-time profile from a {!Telemetry.Metrics} dump: one
    bar per [span.*] histogram (see {!Telemetry.Span}), sized by total
    seconds, with count × mean notes. The input is the parsed metrics
    JSON ([--metrics FILE], [experiments_main --out-dir]). *)
