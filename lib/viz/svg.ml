type t =
  | El of { tag : string; attrs : (string * string) list; children : t list }
  | Text of string
  | Raw of string

let el tag attrs children = El { tag; attrs; children }
let text_el tag attrs s = El { tag; attrs; children = [ Text s ] }
let raw s = Raw s

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt x =
  (* NaN/inf never belong in a coordinate; pin them so a bug renders
     reproducibly instead of producing locale-dependent garbage. *)
  if Float.is_nan x then "0"
  else if x = Float.infinity then "1e9"
  else if x = Float.neg_infinity then "-1e9"
  else if Float.is_integer x && Float.abs x < 1e9 then string_of_int (int_of_float x)
  else begin
    let s = Printf.sprintf "%.2f" x in
    let last = ref (String.length s - 1) in
    while s.[!last] = '0' do
      decr last
    done;
    if s.[!last] = '.' then decr last;
    String.sub s 0 (!last + 1)
  end

let is_el = function El _ -> true | Text _ | Raw _ -> false

let rec add buf node =
  match node with
  | Text s -> Buffer.add_string buf (escape s)
  | Raw s -> Buffer.add_string buf s
  | El { tag; attrs; children } ->
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape v);
          Buffer.add_char buf '"')
        attrs;
      if children = [] then Buffer.add_string buf "/>\n"
      else begin
        Buffer.add_char buf '>';
        if List.exists is_el children then Buffer.add_char buf '\n';
        List.iter (add buf) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_string buf ">\n"
      end

let to_string ~width ~height nodes =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  add buf
    (el "svg"
       [
         ("xmlns", "http://www.w3.org/2000/svg");
         ("width", string_of_int width);
         ("height", string_of_int height);
         ("viewBox", Printf.sprintf "0 0 %d %d" width height);
         ("font-family", "system-ui, -apple-system, 'Segoe UI', sans-serif");
       ]
       nodes);
  Buffer.contents buf
