(** Deterministic SVG emission.

    The container ships no plotting or XML library, so this module
    hand-rolls the little that charts need: an element tree, attribute
    escaping, and byte-stable serialization. Determinism is the point —
    rendered SVGs are golden-tested byte for byte (see DESIGN.md
    "Visualization & dashboard"), so everything that could wobble is
    pinned: attributes render in the order given, coordinates go through
    {!fmt} (fixed precision, no locale), and nothing here reads a clock,
    a counter, or anything else ambient. *)

type t

val el : string -> (string * string) list -> t list -> t
(** [el tag attrs children]. Renders self-closing when [children = []]. *)

val text_el : string -> (string * string) list -> string -> t
(** [text_el tag attrs s]: element whose only child is escaped text — the
    [<text>]/[<title>] case. *)

val raw : string -> t
(** Pre-rendered markup spliced in verbatim (no escaping). For inline
    [<style>] blocks whose content is a fixed string. *)

val escape : string -> string
(** Escapes ampersand, angle brackets, and double quote for use in text
    nodes and attribute values. *)

val fmt : float -> string
(** Canonical short coordinate: integral values with no decimal point
    ([12], not [12.]), otherwise two decimals with trailing zeros
    stripped ([0.25], [3.7]). Never scientific notation. *)

val to_string : width:int -> height:int -> t list -> string
(** Serializes a complete standalone SVG document ([xmlns], [viewBox],
    leading XML declaration, trailing newline). *)
