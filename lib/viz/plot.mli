(** Chart assembly: series + scales + chrome → standalone SVG.

    The mid-level layer between {!Svg} (element soup) and {!Charts}
    (telemetry-aware figure builders). A {!chart} is a plain value — pure
    data in, bytes out — and {!render} is a deterministic function of it,
    which is what makes golden byte-identity tests possible. Styling
    follows the repo's chart conventions (see DESIGN.md "Visualization &
    dashboard"): fixed categorical palette assigned in slot order, thin
    2px line marks, recessive hairline grid, a legend only when two or
    more labeled series share the plot, one y-axis, no clock reads. *)

type mark =
  | Line of (float * float) array
  | Points of (float * float) array
  | Line_points of (float * float) array
  | Errorbar of (float * float * float) array
      (** [(x, y, e)]: point markers joined by a line, with a ±[e]
          whisker at each point *)
  | Step of (float * float) array
      (** right-continuous step (CDF style): horizontal to the next x,
          then vertical to its y *)
  | Bars of (float * float * float) array
      (** [(x0, x1, y)]: vertical bar over [[x0, x1]] anchored at the
          y=0 baseline *)

type series

val series : ?label:string -> ?color:int -> ?dash:bool -> mark -> series
(** [color] pins a palette slot (default: position among the chart's
    series); overlays that annotate another series (a regression fit)
    reuse its slot and set [dash]. Series without [label] stay out of the
    legend. *)

type chart

val chart :
  ?x_label:string ->
  ?y_label:string ->
  ?x_kind:Scale.kind ->
  ?y_kind:Scale.kind ->
  ?x_domain:float * float ->
  ?y_domain:float * float ->
  ?x_categories:string array ->
  ?notes:string list ->
  ?width:int ->
  ?height:int ->
  title:string ->
  series list ->
  chart
(** Axis kinds default to [Linear]; domains default to the data extent
    (padded), and on log axes non-positive values are excluded from the
    extent and clamp to the axis edge when drawn. [x_categories] switches
    the x axis to category positions [0 .. k-1] labeled by the array
    (bars built by {!Charts.phase_profile}). [notes] render inside the
    plot area, top left. Default size 640×400. *)

val render : chart -> string
(** The complete SVG document. Byte-deterministic: equal charts render
    equal bytes, on every run and under any [--jobs]. *)
