type source = {
  page : string;
  snapshot : unit -> string;
  refresh : unit -> bool;
  submit : (string -> bool * string) option;
  shutdown : unit -> unit;
}

let tail_source ~path =
  let tail = Telemetry.Tail.create ~path in
  let state = Telemetry.Timeline.state () in
  {
    page = Dashboard.page ~path;
    snapshot =
      (fun () ->
        Telemetry.Json.to_string
          (Dashboard.snapshot_json
             ~dropped:(Telemetry.Tail.dropped tail)
             ~path
             (Telemetry.Timeline.snapshot state)));
    refresh =
      (fun () ->
        let fresh = Telemetry.Tail.poll tail in
        List.iter (Telemetry.Timeline.push state) fresh;
        fresh <> []);
    submit = None;
    shutdown = (fun () -> Telemetry.Tail.close tail);
  }

type client = {
  fd : Unix.file_descr;
  request : Buffer.t;  (* accumulated request bytes until the request completes *)
  mutable sse : bool;  (* upgraded to a text/event-stream subscriber *)
}

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  source : source;
  chunk : Bytes.t;
  mutable clients : client list;
}

let of_source ?(host = "127.0.0.1") ~port source =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 16;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  { listen_fd; bound_port; source; chunk = Bytes.create 4096; clients = [] }

let create ?host ~port ~path () = of_source ?host ~port (tail_source ~path)

let port t = t.bound_port

let drop t client =
  t.clients <- List.filter (fun c -> c.fd != client.fd) t.clients;
  try Unix.close client.fd with Unix.Unix_error (_, _, _) -> ()

(* Best-effort full write; false (client gone) on connection errors. *)
let send t client s =
  let len = String.length s in
  let rec go off =
    if off >= len then true
    else
      match Unix.write_substring client.fd s off (len - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) ->
          drop t client;
          false
  in
  go 0

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let sse_frame json = "data: " ^ json ^ "\n\n"

let sse_header =
  "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\n\
   Connection: keep-alive\r\n\r\nretry: 1000\n\n"

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = if i + m > n then None else if String.sub s i m = sub then Some i else at (i + 1) in
  at 0

(* (method, target, body) of a complete request; None while bytes are
   still missing (headers unfinished, or a POST body shorter than its
   Content-Length). *)
let parse_request s =
  let headers_body =
    match find_sub s "\r\n\r\n" with
    | Some i -> Some (String.sub s 0 i, String.sub s (i + 4) (String.length s - i - 4))
    | None -> (
        match find_sub s "\n\n" with
        | Some i -> Some (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
        | None -> None)
  in
  match headers_body with
  | None -> None
  | Some (headers, body) -> (
      let first_line =
        match String.index_opt headers '\n' with
        | Some i -> String.trim (String.sub headers 0 i)
        | None -> String.trim headers
      in
      let meth, target =
        match String.split_on_char ' ' first_line with
        | meth :: target :: _ -> (
            ( meth,
              match String.index_opt target '?' with
              | Some i -> String.sub target 0 i
              | None -> target ))
        | _ -> ("GET", "/")
      in
      let content_length =
        String.split_on_char '\n' headers
        |> List.fold_left
             (fun acc line ->
               match String.index_opt line ':' with
               | Some i when String.lowercase_ascii (String.trim (String.sub line 0 i)) = "content-length" ->
                   int_of_string_opt
                     (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
               | _ -> acc)
             None
      in
      match content_length with
      | Some len when String.length body < len -> None
      | Some len -> Some (meth, target, String.sub body 0 len)
      | None -> Some (meth, target, body))

let handle_request t client (meth, target, body) =
  match (meth, target) with
  | "GET", ("/" | "/index.html") ->
      let _ =
        send t client
          (response ~status:"200 OK" ~content_type:"text/html; charset=utf-8" t.source.page)
      in
      drop t client
  | "GET", "/data.json" ->
      let _ =
        send t client
          (response ~status:"200 OK" ~content_type:"application/json"
             (t.source.snapshot () ^ "\n"))
      in
      drop t client
  | "GET", "/events" ->
      if send t client sse_header then
        if send t client (sse_frame (t.source.snapshot ())) then client.sse <- true
  | "POST", "/submit" -> (
      match t.source.submit with
      | None ->
          let _ =
            send t client
              (response ~status:"404 Not Found" ~content_type:"text/plain"
                 "this server takes no submissions\n")
          in
          drop t client
      | Some submit ->
          let accepted, reply = submit body in
          let status = if accepted then "202 Accepted" else "409 Conflict" in
          let _ = send t client (response ~status ~content_type:"application/json" (reply ^ "\n")) in
          drop t client)
  | _ ->
      let _ =
        send t client (response ~status:"404 Not Found" ~content_type:"text/plain" "not found\n")
      in
      drop t client

let read_client t client =
  match Unix.read client.fd t.chunk 0 (Bytes.length t.chunk) with
  | 0 -> drop t client
  | k ->
      if client.sse then () (* subscribers only ever hang up *)
      else begin
        Buffer.add_subbytes client.request t.chunk 0 k;
        match parse_request (Buffer.contents client.request) with
        | Some req -> handle_request t client req
        | None -> ()
      end
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop t client

let broadcast t =
  let frame = sse_frame (t.source.snapshot ()) in
  List.iter (fun c -> if c.sse then ignore (send t c frame)) t.clients

let notify t = broadcast t

let poll ?(timeout = 0.25) t =
  let fds = t.listen_fd :: List.map (fun c -> c.fd) t.clients in
  let readable =
    match Unix.select fds [] [] timeout with
    | readable, _, _ -> readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  in
  if List.memq t.listen_fd readable then begin
    match Unix.accept t.listen_fd with
    | fd, _ -> t.clients <- { fd; request = Buffer.create 256; sse = false } :: t.clients
    | exception Unix.Unix_error (_, _, _) -> ()
  end;
  (* iterate over a snapshot of the list: handlers mutate [t.clients] *)
  List.iter (fun client -> if List.memq client.fd readable then read_client t client) t.clients;
  if t.source.refresh () then broadcast t

let rec run t =
  poll t;
  run t

let close t =
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()) t.clients;
  t.clients <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
  t.source.shutdown ()
