type client = {
  fd : Unix.file_descr;
  request : Buffer.t;  (* accumulated request bytes until headers end *)
  mutable sse : bool;  (* upgraded to a text/event-stream subscriber *)
}

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  path : string;
  page : string;
  tail : Telemetry.Tail.t;
  state : Telemetry.Timeline.state;
  chunk : Bytes.t;
  mutable clients : client list;
}

let create ?(host = "127.0.0.1") ~port ~path () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 16;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  {
    listen_fd;
    bound_port;
    path;
    page = Dashboard.page ~path;
    tail = Telemetry.Tail.create ~path;
    state = Telemetry.Timeline.state ();
    chunk = Bytes.create 4096;
    clients = [];
  }

let port t = t.bound_port

let drop t client =
  t.clients <- List.filter (fun c -> c.fd != client.fd) t.clients;
  try Unix.close client.fd with Unix.Unix_error (_, _, _) -> ()

(* Best-effort full write; false (client gone) on connection errors. *)
let send t client s =
  let len = String.length s in
  let rec go off =
    if off >= len then true
    else
      match Unix.write_substring client.fd s off (len - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) ->
          drop t client;
          false
  in
  go 0

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let snapshot_string t =
  Telemetry.Json.to_string
    (Dashboard.snapshot_json
       ~dropped:(Telemetry.Tail.dropped t.tail)
       ~path:t.path
       (Telemetry.Timeline.snapshot t.state))

let sse_frame json = "data: " ^ json ^ "\n\n"

let sse_header =
  "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\n\
   Connection: keep-alive\r\n\r\nretry: 1000\n\n"

let handle_request t client =
  let first_line =
    let s = Buffer.contents client.request in
    match String.index_opt s '\n' with
    | Some i -> String.trim (String.sub s 0 i)
    | None -> String.trim s
  in
  let target =
    match String.split_on_char ' ' first_line with
    | _meth :: target :: _ -> ( match String.index_opt target '?' with
      | Some i -> String.sub target 0 i
      | None -> target)
    | _ -> "/"
  in
  match target with
  | "/" | "/index.html" ->
      let _ = send t client (response ~status:"200 OK" ~content_type:"text/html; charset=utf-8" t.page) in
      drop t client
  | "/data.json" ->
      let _ =
        send t client
          (response ~status:"200 OK" ~content_type:"application/json" (snapshot_string t ^ "\n"))
      in
      drop t client
  | "/events" ->
      if send t client sse_header then
        if send t client (sse_frame (snapshot_string t)) then client.sse <- true
  | _ ->
      let _ =
        send t client (response ~status:"404 Not Found" ~content_type:"text/plain" "not found\n")
      in
      drop t client

let read_client t client =
  match Unix.read client.fd t.chunk 0 (Bytes.length t.chunk) with
  | 0 -> drop t client
  | k ->
      if client.sse then () (* subscribers only ever hang up *)
      else begin
        Buffer.add_subbytes client.request t.chunk 0 k;
        let s = Buffer.contents client.request in
        (* an empty line ends the headers of a GET request *)
        let has sub =
          let n = String.length s and m = String.length sub in
          let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
          at 0
        in
        if has "\r\n\r\n" || has "\n\n" then handle_request t client
      end
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop t client

let broadcast t =
  let frame = sse_frame (snapshot_string t) in
  List.iter (fun c -> if c.sse then ignore (send t c frame)) t.clients

let poll ?(timeout = 0.25) t =
  let fds = t.listen_fd :: List.map (fun c -> c.fd) t.clients in
  let readable =
    match Unix.select fds [] [] timeout with
    | readable, _, _ -> readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  in
  if List.memq t.listen_fd readable then begin
    match Unix.accept t.listen_fd with
    | fd, _ -> t.clients <- { fd; request = Buffer.create 256; sse = false } :: t.clients
    | exception Unix.Unix_error (_, _, _) -> ()
  end;
  (* iterate over a snapshot of the list: handlers mutate [t.clients] *)
  List.iter (fun client -> if List.memq client.fd readable then read_client t client) t.clients;
  let fresh = Telemetry.Tail.poll t.tail in
  if fresh <> [] then begin
    List.iter (Telemetry.Timeline.push t.state) fresh;
    broadcast t
  end

let rec run t =
  poll t;
  run t

let close t =
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()) t.clients;
  t.clients <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
  Telemetry.Tail.close t.tail
