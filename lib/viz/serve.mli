(** Minimal single-threaded HTTP server for the live soak dashboard.

    [timeline --serve] creates one of these over a JSONL events file that
    another process ([ssr_sim --chaos]) may still be appending to. Each
    {!poll} does one [select] round: accepts connections, answers plain
    requests, tails the file ({!Telemetry.Tail}), folds new events into
    the incremental {!Telemetry.Timeline} state, and pushes a fresh
    {!Dashboard.snapshot_json} frame to every Server-Sent-Events
    subscriber. Single-threaded by construction — no domains, no
    threads — so tests can interleave client and server in one process
    by calling {!poll} between client operations.

    Routes: [/] (the dashboard page), [/data.json] (one snapshot),
    [/events] ([text/event-stream]; one [data: <snapshot>] frame
    immediately and one more whenever tailing yields new events).
    Anything else is 404. HTTP support is the minimum GET handling the
    dashboard needs — this is an observability sidecar, not a web
    server.

    Determinism note: the server never reads a clock; pacing comes from
    the [select] timeout and all displayed timestamps from the event
    stream itself ([bin/detlint] stays clean over this module). *)

type t

val create : ?host:string -> port:int -> path:string -> unit -> t
(** Binds and listens on [host] (default ["127.0.0.1"]) : [port]. Pass
    [port:0] to let the kernel pick (see {!port}). [path] is the events
    file to tail; it need not exist yet. Ignores [SIGPIPE] process-wide
    (client disconnects surface as [EPIPE] and drop the client). *)

val port : t -> int
(** The bound port (useful after [port:0]). *)

val poll : ?timeout:float -> t -> unit
(** One server round, blocking at most [timeout] seconds (default 0.25)
    waiting for sockets. *)

val run : t -> unit
(** {!poll} forever. *)

val close : t -> unit
(** Closes the listening socket and every client. *)
