(** Minimal single-threaded HTTP server for live dashboards.

    Originally the soak-dashboard sidecar ([timeline --serve], over a
    JSONL events file another process is appending to); now generalized
    over a {!source} so the fleet orchestrator can serve its own status
    board ({!Fleet_board}) and accept job submissions from the same
    loop. Each {!poll} does one [select] round: accepts connections,
    answers complete requests, pumps the source, and pushes a fresh
    snapshot frame to every Server-Sent-Events subscriber. Single-
    threaded by construction — no domains, no threads — so tests can
    interleave client and server in one process by calling {!poll}
    between client operations, and an embedding event loop (the fleet's)
    can call [poll ~timeout:0.] once per tick.

    Routes: [/] (the page), [/data.json] (one snapshot), [/events]
    ([text/event-stream]; one [data: <snapshot>] frame immediately, one
    more per {!notify} or fresh source data), and — when the source
    accepts submissions — [POST /submit] (body handed to the source,
    [202]/[409] with a JSON reply). Anything else is 404. HTTP support
    is the minimum the dashboards need — an observability sidecar, not a
    web server. A subscriber hanging up surfaces as [EPIPE] on the next
    frame and drops only that client; the loop and the other
    subscribers are untouched.

    Determinism note: the server never reads a clock; pacing comes from
    the [select] timeout and all displayed timestamps from the data
    itself ([bin/detlint] stays clean over this module). *)

type source = {
  page : string;  (** the HTML served at [/] *)
  snapshot : unit -> string;  (** current status as one-line JSON *)
  refresh : unit -> bool;
      (** pump underlying data once per poll; [true] = broadcast a frame *)
  submit : (string -> bool * string) option;
      (** [POST /submit] handler: body to (accepted, JSON reply) *)
  shutdown : unit -> unit;  (** called by {!close} *)
}

type t

val of_source : ?host:string -> port:int -> source -> t
(** Binds and listens on [host] (default ["127.0.0.1"]) : [port]. Pass
    [port:0] to let the kernel pick (see {!port}). Ignores [SIGPIPE]
    process-wide (client disconnects surface as [EPIPE] and drop the
    client). *)

val create : ?host:string -> port:int -> path:string -> unit -> t
(** {!of_source} with the classic soak source: tail the events file at
    [path] (need not exist yet) through {!Telemetry.Tail} into a
    {!Telemetry.Timeline}, serving {!Dashboard.page}. *)

val port : t -> int
(** The bound port (useful after [port:0]). *)

val poll : ?timeout:float -> t -> unit
(** One server round, blocking at most [timeout] seconds (default 0.25)
    waiting for sockets. *)

val notify : t -> unit
(** Pushes a fresh snapshot frame to every SSE subscriber now — for
    sources whose state changes outside {!poll} (the fleet calls this
    on status transitions). *)

val run : t -> unit
(** {!poll} forever. *)

val close : t -> unit
(** Closes the listening socket, every client, and the source. *)
