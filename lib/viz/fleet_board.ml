(* Self-contained like Dashboard.page: inline CSS on the same palette
   custom properties, inline EventSource JS, no external assets and no
   clock reads. The page renders the orchestrator's [fleet_status]
   snapshot schema (Fleet.Orchestrator.snapshot_json). *)
let page ~title =
  let html_title = Svg.escape title in
  Printf.sprintf
    {html|<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8"/>
<meta name="viewport" content="width=device-width, initial-scale=1"/>
<title>fleet — %s</title>
<style>
.viz-root {
  color-scheme: light;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --ring: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page: #0d0d0d; --surface-1: #1a1a19;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --baseline: #383835; --ring: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
}
* { box-sizing: border-box; }
body { margin: 0; }
.viz-root {
  min-height: 100vh; background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  padding: 20px; font-size: 14px;
}
header h1 { font-size: 18px; margin: 0 0 2px; }
header .sub { color: var(--text-secondary); font-size: 12px; margin-bottom: 16px; }
#status { font-weight: 600; }
#theme { float: right; background: var(--surface-1); color: var(--text-secondary);
  border: 1px solid var(--ring); border-radius: 6px; cursor: pointer; padding: 2px 8px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin-bottom: 16px; }
.tile { background: var(--surface-1); border: 1px solid var(--ring); border-radius: 8px;
  padding: 10px 14px; min-width: 108px; }
.tile .v { font-size: 22px; }
.tile .l { color: var(--muted); font-size: 11px; margin-top: 2px; }
table { border-collapse: collapse; background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; font-size: 12px; width: 100%%; }
th, td { text-align: right; padding: 5px 10px; font-variant-numeric: tabular-nums; }
th:first-child, td:first-child { text-align: left; font-family: ui-monospace, monospace; }
th { color: var(--muted); font-weight: 500; border-bottom: 1px solid var(--grid); }
tr + tr td { border-top: 1px solid var(--grid); }
td .state { padding: 1px 7px; border-radius: 10px; font-size: 11px; }
.state.queued    { background: var(--grid); color: var(--text-secondary); }
.state.backoff   { background: var(--grid); color: var(--series-2); }
.state.running   { background: var(--series-1); color: #fff; }
.state.completed { background: var(--series-3); color: #fff; }
.state.failed    { background: var(--series-2); color: #fff; }
#groups { color: var(--text-secondary); font-size: 12px; margin-bottom: 10px; }
</style>
</head>
<body>
<div class="viz-root">
<header>
  <button id="theme" title="toggle light/dark">◐</button>
  <h1>Fleet orchestrator</h1>
  <div class="sub">%s · <span id="status">connecting…</span>
    <span id="drain"></span></div>
</header>
<section class="tiles">
  <div class="tile"><div class="v" id="t-queue">–</div><div class="l">queue depth</div></div>
  <div class="tile"><div class="v" id="t-flight">–</div><div class="l">in flight</div></div>
  <div class="tile"><div class="v" id="t-done">–</div><div class="l">completed</div></div>
  <div class="tile"><div class="v" id="t-failed">–</div><div class="l">failed</div></div>
  <div class="tile"><div class="v" id="t-retries">–</div><div class="l">retries</div></div>
  <div class="tile"><div class="v" id="t-shed">–</div><div class="l">shed</div></div>
</section>
<div id="groups"></div>
<table>
  <thead><tr><th>job</th><th>group</th><th>protocol</th><th>n</th>
    <th>attempts</th><th>converged</th><th>state</th></tr></thead>
  <tbody id="jobs"></tbody>
</table>
</div>
<script>
"use strict";
const $ = id => document.getElementById(id);

$("theme").addEventListener("click", () => {
  const r = document.documentElement;
  const dark = r.dataset.theme === "dark" ||
    (r.dataset.theme !== "light" && matchMedia("(prefers-color-scheme: dark)").matches);
  r.dataset.theme = dark ? "light" : "dark";
});

function draw(s) {
  $("t-queue").textContent = s.queue_depth;
  $("t-flight").textContent = s.in_flight;
  $("t-done").textContent = `${s.completed}/${s.submitted}`;
  $("t-failed").textContent = s.failed;
  $("t-retries").textContent = s.retries;
  $("t-shed").textContent = s.shed;
  $("drain").textContent = s.draining ? "· draining" : "";
  const groups = Object.entries(s.groups || {});
  $("groups").textContent = groups.length
    ? "queued by group: " + groups.map(([g, d]) => `${g}=${d}`).join("  ") : "";
  $("jobs").innerHTML = (s.jobs || []).map(j =>
    `<tr><td>${j.id}</td><td>${j.group}</td><td>${j.protocol}</td><td>${j.n}</td>` +
    `<td>${j.attempts}</td><td>${j.converged == null ? "–" : j.converged + "/" + j.trials}</td>` +
    `<td><span class="state ${j.state}">${j.state}</span></td></tr>`).join("");
}

const es = new EventSource("/events");
es.onopen = () => { $("status").textContent = "live"; };
es.onerror = () => { $("status").textContent = "disconnected — retrying"; };
es.onmessage = e => { draw(JSON.parse(e.data)); $("status").textContent = "live"; };
</script>
</body>
</html>
|html}
    html_title html_title
