(** Deterministic open-addressing cache from packed ordered cell pairs to
    probed transition outcomes — the memory behind the lazy count engine.

    A flat int -> int table with linear probing and a fixed seedless
    splitmix64-style finalizer hash: no allocation on lookup, no boxed
    buckets, and — the property the determinism lint cares about — layout
    is a pure function of the insertion sequence. The engine only ever
    inserts and looks up (never iterates), so results cannot depend on
    table order at all.

    Null entries are budgeted: {!add_null} refuses once the limit is
    reached, and the engine falls back to re-probing such pairs (the lazy
    kernel's exactness never depends on a pair being cached). Productive
    entries ({!add}) always succeed, keeping the cache consistent with the
    productive adjacency built next to it. *)

type t

val absent : int
(** Reserved value returned by {!find} for missing keys ([min_int]);
    never storable. *)

val create : ?null_limit:int -> unit -> t
(** Empty cache. [null_limit] (default [2^21]) caps the number of cached
    null outcomes; growth beyond it degrades to re-probing, not failure. *)

val find : t -> int -> int
(** The value stored for a key, or {!absent}. Keys are non-negative. *)

val add : t -> int -> int -> unit
(** Insert or overwrite. Raises [Invalid_argument] on a negative key or
    the reserved {!absent} value. *)

val add_null : t -> int -> int -> bool
(** Like {!add}, but counts toward the null budget; [false] (and no
    insertion) once the budget is exhausted. *)

val size : t -> int
(** Entries stored. *)

val nulls : t -> int
(** Null entries stored (the budgeted kind). *)
