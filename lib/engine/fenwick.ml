(* Growable Fenwick (binary indexed) tree over non-negative integer
   weights. The count engine keeps one per degree class, indexed by the
   class-local slot of each (state, class) cell and weighted by the cell's
   agent count, so drawing a uniformly random agent of a class is a
   single O(log d) descent instead of an O(d) scan.

   A plain per-slot weight array is kept alongside the partial sums: it
   makes growth a simple rebuild and [weight] an O(1) read. *)

type t = {
  mutable weights : int array;  (* slot -> weight *)
  mutable tree : int array;  (* 1-based Fenwick partial sums *)
  mutable len : int;  (* slots in use *)
  mutable total : int;
}

let create () = { weights = Array.make 16 0; tree = Array.make 17 0; len = 0; total = 0 }

let length t = t.len

let total t = t.total

let weight t i =
  if i < 0 || i >= t.len then invalid_arg "Fenwick.weight: slot out of range";
  t.weights.(i)

let rebuild t =
  let cap = Array.length t.weights in
  let tree = Array.make (cap + 1) 0 in
  for i = 0 to t.len - 1 do
    let idx = ref (i + 1) in
    let w = t.weights.(i) in
    while !idx <= cap do
      tree.(!idx) <- tree.(!idx) + w;
      idx := !idx + (!idx land - !idx)
    done
  done;
  t.tree <- tree

(* Append a new slot with weight 0; O(cap) on capacity doubling,
   amortized O(1). *)
let append t =
  let cap = Array.length t.weights in
  if t.len = cap then begin
    let weights = Array.make (2 * cap) 0 in
    Array.blit t.weights 0 weights 0 t.len;
    t.weights <- weights;
    rebuild t
  end;
  t.len <- t.len + 1

let add t i delta =
  if i < 0 || i >= t.len then invalid_arg "Fenwick.add: slot out of range";
  t.weights.(i) <- t.weights.(i) + delta;
  let cap = Array.length t.weights in
  let idx = ref (i + 1) in
  while !idx <= cap do
    t.tree.(!idx) <- t.tree.(!idx) + delta;
    idx := !idx + (!idx land - !idx)
  done;
  t.total <- t.total + delta

let top_bit cap =
  let rec go b = if b * 2 <= cap then go (b * 2) else b in
  go 1

(* [find t target] with [0 <= target < total t] returns the slot [i] such
   that the cumulative weight of slots [< i] is <= target < cumulative
   weight of slots [<= i] — i.e. slot chosen proportionally to weight when
   [target] is uniform. Standard Fenwick descent, O(log capacity). *)
let find t target =
  if target < 0 || target >= t.total then invalid_arg "Fenwick.find: target out of range";
  let cap = Array.length t.weights in
  let pos = ref 0 in
  let remaining = ref target in
  let bit = ref (top_bit cap) in
  while !bit > 0 do
    let next = !pos + !bit in
    if next <= cap && t.tree.(next) <= !remaining then begin
      remaining := !remaining - t.tree.(next);
      pos := next
    end;
    bit := !bit / 2
  done;
  if !pos >= t.len then invalid_arg "Fenwick.find: weight accounting broke";
  !pos
