(** Companion descriptor making a protocol statically analyzable.

    A {!Protocol.t} is a black-box transition function; an [Enumerable.t]
    additionally {e declares} the protocol's finite state space, the
    invariants every transition output must satisfy, and what correctness
    and stabilization mean for the protocol — the machine-checkable content
    of the paper's Table 1 and of Theorem 2.1 / Observation 2.2. The
    [Analysis] library consumes these descriptors: it verifies that the
    transition function is {e closed} over the declared states (closure /
    Table 1 state counts), that the invariants hold on every transition
    output (invariant lint), that silent configurations are correct
    (silence classification), and that for small populations every
    configuration of the declared space reaches the declared stabilization
    regime (exhaustive model checking). *)

type 'a invariant = {
  iname : string;  (** short stable identifier, e.g. ["resetcount<=R_max"] *)
  holds : 'a -> bool;
}

(** One observable integer component of a state, for compilation to packed
    int codes (see [lib/ir]). A declaration [{ fname; frange; fget }]
    promises [0 <= fget s < frange] for every declared state [s], and that
    the tuple of all declared fields is injective over the declared state
    space — the IR layer validates both and falls back to a synthetic
    index field otherwise. Components that do not apply to a state (e.g.
    [errorcount] of a settled agent) conventionally read 0. *)
type 'a field = { fname : string; frange : int; fget : 'a -> int }

(** What the protocol promises about the bottom strongly-connected
    components of its configuration graph (equivalently, about the
    long-run behaviour of the scheduler's Markov chain from {e any}
    initial configuration):
    - [Silent_stabilizing]: every bottom SCC is a single silent (no
      productive interaction) configuration satisfying [correct] — the
      paper's silent SSR protocols;
    - [Stabilizing]: every configuration of every bottom SCC satisfies
      [correct] (states may keep changing, but correctness, once entered,
      is permanent with probability 1) — Sublinear-Time-SSR;
    - [Loosely_stabilizing]: every bottom SCC contains at least one
      [correct] configuration (correctness recurs infinitely often with
      probability 1) — the loosely-stabilizing variant. *)
type expectation = Silent_stabilizing | Stabilizing | Loosely_stabilizing

type 'a t = {
  protocol : 'a Protocol.t;
  states : 'a list;
      (** the declared state space, one representative per {!normalize}
          equivalence class; finite and duplicate-free *)
  normalize : 'a -> 'a;
      (** canonical representative of a state. Must be the identity on
          [states], must be a bisimulation quotient (normalized and raw
          state behave identically under every transition), and must make
          semantically equal states {e structurally} equal, so that
          polymorphic hashing agrees with [protocol.equal]. *)
  invariants : 'a invariant list;
      (** must hold on every transition output reachable from declared
          inputs (checked exhaustively by the analyzer) and on every
          simulation-trace state (checked statistically by QCheck). *)
  admissible : 'a array -> bool;
      (** configurations quantified over by silence classification and
          model checking. [fun _ -> true] for the self-stabilizing
          protocols; restricts e.g. the initialized baseline to its
          legal initial region (>= 1 leader). Must be closed under the
          transition (the analyzer reports any escape). *)
  correct : 'a array -> bool;  (** the protocol's output condition *)
  expectation : expectation;
  max_draws : int;
      (** upper bound on bounded-coin draws a single transition may make
          (0 for deterministic protocols); guards coin enumeration *)
  declared_count : int option;
      (** the closed-form state count claimed for this parameterization
          (Table 1 column), cross-checked against [List.length states] *)
  note : string option;
      (** provenance note, e.g. "reduced exact-analysis parameters" *)
  fields : 'a field list;
      (** state decomposition used by the [lib/ir] kernel compiler for
          mixed-radix packing; empty means "pack by declared-state index" *)
}

val ranking_correct : 'a Protocol.t -> 'a array -> bool
(** Observed ranks are exactly a permutation of 1..n (the SSR output
    condition). *)

val unique_leader : 'a Protocol.t -> 'a array -> bool
(** Exactly one agent observes as leader (the SSLE output condition). *)

val make :
  protocol:'a Protocol.t ->
  states:'a list ->
  ?normalize:('a -> 'a) ->
  ?invariants:'a invariant list ->
  ?admissible:('a array -> bool) ->
  ?correct:('a array -> bool) ->
  ?expectation:expectation ->
  ?max_draws:int ->
  ?declared_count:int ->
  ?note:string ->
  ?fields:'a field list ->
  unit ->
  'a t
(** Defaults: [normalize] is the identity, [invariants] empty, every
    configuration admissible, [correct] is {!ranking_correct},
    [expectation] is [Silent_stabilizing], [max_draws] 0, [fields]
    empty. *)

val pp_expectation : Format.formatter -> expectation -> unit
