(** Convergence and stabilization measurement policies.

    The paper measures {e stabilization}: the time after which every
    reachable configuration stays correct. A simulation cannot enumerate
    reachable configurations, but for the protocols in this paper
    convergence and stabilization coincide (footnote 2 of the paper), so the
    runner measures the last interaction at which the execution {e entered}
    correctness and then keeps simulating for a confirmation window,
    restarting the clock if correctness is ever lost. An execution that ends
    its confirmation window unscathed is reported as converged at the entry
    point, not at the end of the window.

    The runner is engine-polymorphic: it drives any {!Exec.t}. On the
    count-based engine it additionally uses the exact-silence oracle
    ({!Exec.silent}): a silent configuration can never change again, so
    its correctness status is final and the confirmation window is skipped
    (W = 0 — the window would pass vacuously). The reported entry point is
    identical either way; only wasted simulation is avoided. Disable with
    [~silence_oracle:false] to force confirmation-window semantics (the
    differential tests do, to check the two agree).

    Progress reporting goes through the {!Instrument} event stream: the
    runner emits [Correct_entered] / [Correct_lost] on the executor, and
    subscribers attached with {!Exec.on} also see the executor's own
    [Step] / [Silence] / [Fault] events. This replaces the [?on_step]
    callback of earlier versions. *)

type task = Ranking | Leader

type outcome = {
  converged : bool;
      (** [true] iff correctness held for the whole confirmation window, or
          the executor proved silence while correct *)
  convergence_interactions : int;
      (** when [converged]: interaction index of the final entry into
          correctness (0 when the initial configuration is already
          correct). When not [converged]: the pending unconfirmed entry if
          the run ended correct mid-window, else [total_interactions] —
          never a fabricated 0, so censored-observation analyses stay
          conservative. *)
  convergence_time : float;  (** [convergence_interactions / n] *)
  total_interactions : int;
      (** interaction-clock reading at the end of the run (on the count
          engine this includes skipped null interactions) *)
  violations : int;
      (** number of times a previously-correct execution became incorrect
          again (counts adversarial recoveries and protocol re-resets) *)
}

val default_confirm : n:int -> int
(** Confirmation window: [max (8n, 4·n·⌈log₂ n⌉)] interactions — several
    epidemic times, enough for any pending reset wave to surface. *)

val default_horizon : n:int -> expected_time:float -> int
(** Interaction budget: [20 × expected_time × n + confirm], clamped to at
    least [1000·n]; generous relative to the predicted scaling so that WHP
    tails fit. *)

val run_to_stability :
  ?silence_oracle:bool ->
  task:task ->
  max_interactions:int ->
  confirm_interactions:int ->
  'a Exec.t ->
  outcome
(** Advances the executor until correctness has held for
    [confirm_interactions] consecutive interactions, the executor proves
    silence ([silence_oracle], default [true]), or [max_interactions]
    total elapse. *)

val is_correct : task:task -> 'a Exec.t -> bool
