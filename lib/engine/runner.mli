(** Convergence and stabilization measurement policies.

    The paper measures {e stabilization}: the time after which every
    reachable configuration stays correct. A simulation cannot enumerate
    reachable configurations, but for the protocols in this paper
    convergence and stabilization coincide (footnote 2 of the paper), so the
    runner measures the last interaction at which the execution {e entered}
    correctness and then keeps simulating for a confirmation window,
    restarting the clock if correctness is ever lost. An execution that ends
    its confirmation window unscathed is reported as converged at the entry
    point, not at the end of the window. *)

type task = Ranking | Leader

type outcome = {
  converged : bool;
      (** [true] iff correctness held for the whole confirmation window *)
  convergence_interactions : int;
      (** interaction index at the final entry into correctness (0 when the
          initial configuration is already correct); meaningful only when
          [converged] *)
  convergence_time : float;  (** [convergence_interactions / n] *)
  total_interactions : int;  (** interactions actually simulated *)
  violations : int;
      (** number of times a previously-correct execution became incorrect
          again (counts adversarial recoveries and protocol re-resets) *)
}

val default_confirm : n:int -> int
(** Confirmation window: [max (8n, 4·n·⌈log₂ n⌉)] interactions — several
    epidemic times, enough for any pending reset wave to surface. *)

val default_horizon : n:int -> expected_time:float -> int
(** Interaction budget: [20 × expected_time × n + confirm], clamped to at
    least [1000·n]; generous relative to the predicted scaling so that WHP
    tails fit. *)

val run_to_stability :
  ?on_step:('a Sim.t -> unit) ->
  task:task ->
  max_interactions:int ->
  confirm_interactions:int ->
  'a Sim.t ->
  outcome
(** Steps the simulation until correctness has held for
    [confirm_interactions] consecutive interactions, or until
    [max_interactions] total. [on_step] runs after every interaction. *)

val is_correct : task:task -> 'a Sim.t -> bool
