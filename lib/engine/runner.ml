type task = Ranking | Leader

type outcome = {
  converged : bool;
  convergence_interactions : int;
  convergence_time : float;
  total_interactions : int;
  violations : int;
}

let is_correct ~task sim =
  match task with Ranking -> Sim.ranking_correct sim | Leader -> Sim.leader_correct sim

let ceil_log2 n =
  let rec loop p k = if p >= n then k else loop (p * 2) (k + 1) in
  loop 1 0

let default_confirm ~n = max (8 * n) (4 * n * max 1 (ceil_log2 n))

let default_horizon ~n ~expected_time =
  let budget = int_of_float (20.0 *. expected_time *. float_of_int n) in
  max (1000 * n) (budget + default_confirm ~n)

let run_to_stability ?on_step ~task ~max_interactions ~confirm_interactions sim =
  let n = Sim.n sim in
  let entered_at = ref (if is_correct ~task sim then Some (Sim.interactions sim) else None) in
  let violations = ref 0 in
  let finished () =
    match !entered_at with
    | None -> false
    | Some t0 -> Sim.interactions sim - t0 >= confirm_interactions
  in
  let step_once () =
    Sim.step sim;
    (match on_step with Some f -> f sim | None -> ());
    let correct = is_correct ~task sim in
    match (!entered_at, correct) with
    | None, true -> entered_at := Some (Sim.interactions sim)
    | Some _, false ->
        entered_at := None;
        incr violations
    | None, false | Some _, true -> ()
  in
  while (not (finished ())) && Sim.interactions sim < max_interactions do
    step_once ()
  done;
  let converged = finished () in
  let convergence_interactions = match !entered_at with Some t0 when converged -> t0 | Some t0 -> t0 | None -> 0 in
  {
    converged;
    convergence_interactions;
    convergence_time = float_of_int convergence_interactions /. float_of_int n;
    total_interactions = Sim.interactions sim;
    violations = !violations;
  }
