type task = Ranking | Leader

type outcome = {
  converged : bool;
  convergence_interactions : int;
  convergence_time : float;
  total_interactions : int;
  violations : int;
}

let is_correct ~task exec =
  match task with
  | Ranking -> Exec.ranking_correct exec
  | Leader -> Exec.leader_correct exec

let ceil_log2 n =
  let rec loop p k = if p >= n then k else loop (p * 2) (k + 1) in
  loop 1 0

let default_confirm ~n = max (8 * n) (4 * n * max 1 (ceil_log2 n))

let default_horizon ~n ~expected_time =
  let budget = int_of_float (20.0 *. expected_time *. float_of_int n) in
  max (1000 * n) (budget + default_confirm ~n)

let run_to_stability (type a) ?(silence_oracle = true) ~task ~max_interactions
    ~confirm_interactions ((module E : Exec.INSTANCE with type state = a) as exec : a Exec.t)
    =
  let n = Exec.n exec in
  let entered_at = ref None in
  let violations = ref 0 in
  (* Mirrors the engine's interaction counter; refreshed after each
     [advance] so the (hot) loop conditions read a local instead of
     calling back into the executor. *)
  let interactions = ref (E.interactions ()) in
  (* Earliest point where the run could end: the end of the confirmation
     window once correctness has been entered, the horizon otherwise.
     Caps the count engine's clock fast-forward; cached here and updated
     only on correctness transitions to keep it off the hot loop. *)
  let deadline = ref max_interactions in
  let observe () =
    let correct =
      match task with Ranking -> E.ranking_correct () | Leader -> E.leader_correct ()
    in
    match !entered_at with
    | None when correct ->
        let at = !interactions in
        entered_at := Some at;
        deadline := min max_interactions (at + confirm_interactions);
        E.emit (Instrument.Correct_entered { interactions = at; time = E.parallel_time () })
    | Some _ when not correct ->
        entered_at := None;
        deadline := max_interactions;
        incr violations;
        E.emit
          (Instrument.Correct_lost
             { interactions = !interactions; time = E.parallel_time () })
    | None | Some _ -> ()
  in
  let finished () =
    match !entered_at with
    | None -> false
    | Some t0 -> !interactions - t0 >= confirm_interactions
  in
  let stopped_silent = ref false in
  (* The initial configuration may already be correct; routing the check
     through [observe] publishes the entry on the event stream too. *)
  observe ();
  while
    (not !stopped_silent) && (not (finished ())) && !interactions < max_interactions
  do
    (* The oracle is re-consulted every iteration (an O(1) counter read):
       on the lazy count engine it is not a static capability — it answers
       [None] until silence becomes provable and [Some true] after. *)
    if silence_oracle && (match E.silent () with Some true -> true | _ -> false) then
      (* Exact-silence shortcut: no transition is ever applicable again, so
         the current correctness status is final — the confirmation window
         (W = 0 means it would pass vacuously) is skipped. *)
      stopped_silent := true
    else begin
      let (_ : bool) = E.advance ~until:!deadline in
      interactions := E.interactions ();
      observe ()
    end
  done;
  let converged = finished () || (!stopped_silent && !entered_at <> None) in
  let total_interactions = !interactions in
  (* When converged: the final entry into correctness. When not converged:
     the pending (unconfirmed) entry if the run ended while correct, else
     the full horizon — so that treating it as a censored observation is
     conservative. *)
  let convergence_interactions =
    match !entered_at with Some t0 -> t0 | None -> total_interactions
  in
  {
    converged;
    convergence_interactions;
    convergence_time = float_of_int convergence_interactions /. float_of_int n;
    total_interactions;
    violations = !violations;
  }
