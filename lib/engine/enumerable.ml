type 'a invariant = { iname : string; holds : 'a -> bool }

type 'a field = { fname : string; frange : int; fget : 'a -> int }

type expectation = Silent_stabilizing | Stabilizing | Loosely_stabilizing

type 'a t = {
  protocol : 'a Protocol.t;
  states : 'a list;
  normalize : 'a -> 'a;
  invariants : 'a invariant list;
  admissible : 'a array -> bool;
  correct : 'a array -> bool;
  expectation : expectation;
  max_draws : int;
  declared_count : int option;
  note : string option;
  fields : 'a field list;
}

let ranking_correct (p : 'a Protocol.t) config =
  let n = p.Protocol.n in
  let seen = Array.make (n + 1) false in
  let ok = ref true in
  Array.iter
    (fun s ->
      match p.Protocol.rank s with
      | Some r when r >= 1 && r <= n && not seen.(r) -> seen.(r) <- true
      | Some _ | None -> ok := false)
    config;
  (* Every agent observed a distinct in-range rank over a population of
     size [n], so the ranks are exactly a permutation of 1..n. *)
  !ok && Array.length config = n

let unique_leader (p : 'a Protocol.t) config =
  let leaders = ref 0 in
  Array.iter (fun s -> if p.Protocol.is_leader s then incr leaders) config;
  !leaders = 1

let make ~protocol ~states ?(normalize = Fun.id) ?(invariants = [])
    ?(admissible = fun _ -> true) ?correct ?(expectation = Silent_stabilizing)
    ?(max_draws = 0) ?declared_count ?note ?(fields = []) () =
  let correct = match correct with Some f -> f | None -> ranking_correct protocol in
  {
    protocol;
    states;
    normalize;
    invariants;
    admissible;
    correct;
    expectation;
    max_draws;
    declared_count;
    note;
    fields;
  }

let pp_expectation fmt = function
  | Silent_stabilizing -> Format.pp_print_string fmt "silent-stabilizing"
  | Stabilizing -> Format.pp_print_string fmt "stabilizing"
  | Loosely_stabilizing -> Format.pp_print_string fmt "loosely-stabilizing"
