(* Fixed-size domain pool. One shared FIFO of thunks, guarded by a mutex
   and a condition variable; the submitting domain participates in
   draining its own batch, so a pool of [jobs = 1] never spawns a domain
   and degenerates to a plain sequential loop. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  (* Per-domain utilization (telemetry): slot 0 is the submitting domain,
     slots 1..jobs-1 the workers. Guarded by [stats_mutex], touched once
     per task — not per interaction. *)
  stats_mutex : Mutex.t;
  tasks_run : int array;
  busy_s : float array;
}

type domain_stats = { tasks : int; busy_s : float }

let record_task pool slot dt =
  Mutex.lock pool.stats_mutex;
  pool.tasks_run.(slot) <- pool.tasks_run.(slot) + 1;
  pool.busy_s.(slot) <- pool.busy_s.(slot) +. dt;
  Mutex.unlock pool.stats_mutex

let run_task pool slot thunk =
  let t0 = Unix.gettimeofday () in
  thunk ();
  record_task pool slot (Unix.gettimeofday () -. t0)

let stats pool =
  Mutex.lock pool.stats_mutex;
  let out =
    Array.init pool.jobs (fun i -> { tasks = pool.tasks_run.(i); busy_s = pool.busy_s.(i) })
  in
  Mutex.unlock pool.stats_mutex;
  out

let default_jobs () =
  match Sys.getenv_opt "REPRO_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "REPRO_JOBS=%S: expected a positive integer" s))
  | None -> Domain.recommended_domain_count ()

let jobs pool = pool.jobs

(* Workers block on [work_available]; [closed] with an empty queue means
   exit. Tasks never raise: batch thunks trap exceptions into their slot. *)
let rec worker_loop pool slot =
  Mutex.lock pool.mutex;
  let rec take () =
    if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
    else if pool.closed then None
    else begin
      Condition.wait pool.work_available pool.mutex;
      take ()
    end
  in
  let task = take () in
  Mutex.unlock pool.mutex;
  match task with
  | None -> ()
  | Some thunk ->
      run_task pool slot thunk;
      worker_loop pool slot

let create ~jobs =
  if jobs < 1 then invalid_arg "Engine.Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      stats_mutex = Mutex.create ();
      tasks_run = Array.make jobs 0;
      busy_s = Array.make jobs 0.0;
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [];
  List.iter Domain.join workers

type 'a slot = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

let run pool tasks =
  let k = Array.length tasks in
  if k = 0 then [||]
  else begin
    Mutex.lock pool.mutex;
    let closed = pool.closed in
    Mutex.unlock pool.mutex;
    if closed then invalid_arg "Engine.Pool.run: pool is shut down";
    let slots = Array.make k Pending in
    let remaining = ref k in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let run_one i =
      let result =
        try Done (tasks.(i) ())
        with e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock batch_mutex;
      slots.(i) <- result;
      decr remaining;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock batch_mutex
    in
    Mutex.lock pool.mutex;
    for i = 0 to k - 1 do
      Queue.push (fun () -> run_one i) pool.queue
    done;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    (* The submitter drains the queue alongside the workers… *)
    let rec help () =
      Mutex.lock pool.mutex;
      let task = if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue) in
      Mutex.unlock pool.mutex;
      match task with
      | Some thunk ->
          run_task pool 0 thunk;
          help ()
      | None -> ()
    in
    help ();
    (* …then waits for the stragglers still running on worker domains. *)
    Mutex.lock batch_mutex;
    while !remaining > 0 do
      Condition.wait batch_done batch_mutex
    done;
    Mutex.unlock batch_mutex;
    (* Re-raise the lowest-indexed failure only after the whole batch has
       drained, so no task is left running against freed state. *)
    Array.iter
      (function Failed (e, bt) -> Printexc.raise_with_backtrace e bt | Pending | Done _ -> ())
      slots;
    Array.map (function Done v -> v | Pending | Failed _ -> assert false) slots
  end

(* Detached submission for long-lived orchestrators (lib/fleet): enqueue
   one task and return immediately. The submitter never helps drain (it
   is an event loop, not a batch), so at least one worker domain must
   exist. Exceptions are trapped: a raising detached task would
   otherwise kill its worker domain and surface only at [shutdown]. *)
let submit pool thunk =
  if pool.jobs < 2 then
    invalid_arg "Engine.Pool.submit: detached tasks need at least one worker domain (jobs >= 2)";
  Mutex.lock pool.mutex;
  let closed = pool.closed in
  if not closed then begin
    Queue.push (fun () -> try thunk () with _ -> ()) pool.queue;
    Condition.signal pool.work_available
  end;
  Mutex.unlock pool.mutex;
  if closed then invalid_arg "Engine.Pool.submit: pool is shut down"

let map pool f xs = run pool (Array.map (fun x () -> f x) xs)

let init pool k f = run pool (Array.init k (fun i () -> f i))

let with_pool ?jobs f =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
