(** Time-series collection from running simulations.

    A collector samples a user metric every fixed number of interactions;
    plug its [hook] into {!Runner.run_to_stability}'s [on_step] (or call it
    manually) and read the accumulated [(parallel_time, value)] series
    afterwards. Used by the examples to show recovery timelines. *)

type 'b t

val collector : interval:int -> unit -> 'b t
(** [collector ~interval ()] samples every [interval] interactions
    (and once at interaction 0 on the first hook call). *)

val hook : 'b t -> ('a Sim.t -> 'b) -> 'a Sim.t -> unit
(** [hook c metric sim] records [metric sim] if the sampling interval has
    elapsed. *)

val series : 'b t -> (float * 'b) list
(** Chronological [(parallel_time, value)] samples. *)

val mark : 'b t -> 'a Sim.t -> 'b -> unit
(** Force-record a sample now (e.g. right after a fault injection). *)
