(** Time-series collection from running simulations.

    {b Superseded.} This module predates the {!Instrument} event layer and
    only understands the agent engine ({!Sim}): a collector samples a user
    metric every fixed number of interactions via a [hook] called manually
    after each step. New code should subscribe an {!Instrument.collector}
    to an executor with [Exec.on exec (Instrument.sampled c metric)] — the
    same collector then works on both engines, including the count-based
    one where time advances in jumps. [Trace] is kept for existing
    call sites and tests. *)

type 'b t

val collector : interval:int -> unit -> 'b t
(** [collector ~interval ()] samples every [interval] interactions
    (and once at interaction 0 on the first hook call). *)

val hook : 'b t -> ('a Sim.t -> 'b) -> 'a Sim.t -> unit
(** [hook c metric sim] records [metric sim] if the sampling interval has
    elapsed. *)

val series : 'b t -> (float * 'b) list
(** Chronological [(parallel_time, value)] samples. *)

val mark : 'b t -> 'a Sim.t -> 'b -> unit
(** Force-record a sample now (e.g. right after a fault injection). *)
