(* Deterministic open-addressing cache from packed ordered cell pairs to
   probed transition outcomes.

   The lazy count engine probes ordered (state, degree-class) cell pairs
   on demand and must remember the outcomes. A [Stdlib.Hashtbl] would work
   — the engine never iterates the table, so iteration-order
   nondeterminism cannot leak — but a flat int->int open-addressing table
   keeps the hot-path lookup allocation-free, gives exact control over the
   memory ceiling (two int arrays, no boxed buckets), and makes the
   determinism argument for detlint a one-liner: the hash is a fixed
   splitmix64-style finalizer of the key itself, so layout is a pure
   function of the insertion sequence, which is PRNG-driven and hence
   identical for every --jobs value.

   Keys are non-negative packed pairs; values are any int except the
   reserved {!absent}. Null outcomes are capped: once [size] reaches the
   null budget, further {!add_null} calls are refused (the engine then
   simply re-probes such pairs — exactness does not depend on caching).
   Productive outcomes always insert, so the productive adjacency the
   engine builds next to this cache can never disagree with it. *)

type t = {
  mutable keys : int array;  (* -1 = empty slot *)
  mutable data : int array;
  mutable mask : int;  (* capacity - 1; capacity a power of two *)
  mutable size : int;
  null_limit : int;
  mutable nulls : int;
}

let absent = min_int

let initial_capacity = 1024

let create ?(null_limit = 1 lsl 21) () =
  {
    keys = Array.make initial_capacity (-1);
    data = Array.make initial_capacity 0;
    mask = initial_capacity - 1;
    size = 0;
    null_limit;
    nulls = 0;
  }

let size t = t.size

let nulls t = t.nulls

(* splitmix64-style finalizer over the key: fixed, seedless, well-mixed.
   Plain native-int xor-shift-multiply (62-bit odd constants) so the hot
   path allocates nothing. *)
let hash key =
  let h = key lxor (key lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x27BB2EE687B0B0FD in
  (h lxor (h lsr 31)) land max_int

let find t key =
  let mask = t.mask in
  let i = ref (hash key land mask) in
  let result = ref absent in
  let continue = ref true in
  while !continue do
    let k = t.keys.(!i) in
    if k = -1 then continue := false
    else if k = key then begin
      result := t.data.(!i);
      continue := false
    end
    else i := (!i + 1) land mask
  done;
  !result

let insert_raw t key v =
  let mask = t.mask in
  let i = ref (hash key land mask) in
  while t.keys.(!i) <> -1 && t.keys.(!i) <> key do
    i := (!i + 1) land mask
  done;
  if t.keys.(!i) = -1 then begin
    t.keys.(!i) <- key;
    t.size <- t.size + 1
  end;
  t.data.(!i) <- v

let grow t =
  let old_keys = t.keys and old_data = t.data in
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap (-1);
  t.data <- Array.make cap 0;
  t.mask <- cap - 1;
  t.size <- 0;
  Array.iteri (fun i k -> if k <> -1 then insert_raw t k old_data.(i)) old_keys

let add t key v =
  if key < 0 then invalid_arg "Paircache.add: negative key";
  if v = absent then invalid_arg "Paircache.add: reserved value";
  if 2 * (t.size + 1) > t.mask + 1 then grow t;
  insert_raw t key v

let add_null t key v =
  if t.nulls >= t.null_limit then false
  else begin
    add t key v;
    t.nulls <- t.nulls + 1;
    true
  end
