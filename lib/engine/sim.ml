type 'a t = {
  protocol : 'a Protocol.t;
  states : 'a array;
  rng : Prng.t;
  sampler : Prng.t -> int * int;
  monitor : 'a Monitor.t;
  mutable interactions : int;
  mutable last_pair : (int * int) option;
}

let make_opt sampler ~protocol ~init ~rng =
  if Array.length init <> protocol.Protocol.n then
    invalid_arg "Sim.make: initial configuration size differs from protocol.n";
  Protocol.validate ~config:init protocol;
  let states = Array.copy init in
  let sampler =
    match sampler with
    | Some s -> s
    | None ->
        let n = protocol.Protocol.n in
        fun rng -> Prng.distinct_pair rng n
  in
  {
    protocol;
    states;
    rng;
    sampler;
    monitor = Monitor.create protocol states;
    interactions = 0;
    last_pair = None;
  }

let make ~protocol ~init ~rng = make_opt None ~protocol ~init ~rng

let make_with ~sampler ~protocol ~init ~rng = make_opt (Some sampler) ~protocol ~init ~rng

let protocol t = t.protocol

let n t = t.protocol.Protocol.n

let step t =
  let i, j = t.sampler t.rng in
  let a = t.states.(i) and b = t.states.(j) in
  let a', b' = t.protocol.Protocol.transition t.rng a b in
  t.states.(i) <- a';
  t.states.(j) <- b';
  Monitor.update t.monitor ~old_state:a ~new_state:a';
  Monitor.update t.monitor ~old_state:b ~new_state:b';
  t.interactions <- t.interactions + 1;
  t.last_pair <- Some (i, j)

let run t k =
  for _ = 1 to k do
    step t
  done

let interactions t = t.interactions

let parallel_time t = float_of_int t.interactions /. float_of_int (n t)

let ranking_correct t = Monitor.ranking_correct t.monitor

let leader_correct t = Monitor.leader_correct t.monitor

let leader_count t = Monitor.leader_count t.monitor

let ranked_agents t = Monitor.ranked_agents t.monitor

let monitor_updates t = Monitor.updates t.monitor

let state t i = t.states.(i)

let inject t i s =
  if i < 0 || i >= n t then invalid_arg "Sim.inject: agent index out of range";
  let old_state = t.states.(i) in
  t.states.(i) <- s;
  Monitor.update t.monitor ~old_state ~new_state:s

let corrupt t ~rng ~fraction gen =
  if not (fraction >= 0.0 && fraction <= 1.0) then
    invalid_arg "Sim.corrupt: fraction outside [0,1]";
  let count =
    if fraction = 0.0 then 0
    else max 1 (int_of_float (Float.round (fraction *. float_of_int (n t))))
  in
  let victims = Prng.permutation rng (n t) in
  for k = 0 to count - 1 do
    inject t victims.(k) (gen rng)
  done;
  count

let snapshot t = Array.copy t.states

let fold_states t ~init ~f = Array.fold_left f init t.states

let last_pair t = t.last_pair
