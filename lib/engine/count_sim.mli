(** Count-based (Gillespie-style) simulation for deterministic protocols.

    {!Sim} executes every scheduled interaction, productive or not; near a
    silent configuration almost all interactions are null, so simulating
    Silent-n-state-SSR's Θ(n²) parallel time costs Θ(n³) steps. This engine
    instead tracks the configuration as {e counts of distinct states},
    discovers which ordered state pairs have non-null transitions (possible
    because the protocol is deterministic), and jumps straight from one
    {e productive} interaction to the next: the number of intervening null
    interactions is geometric with success probability
    [W / (n·(n−1))], where [W] is the number of ordered agent pairs whose
    state pair is productive. The embedded jump chain and the interaction
    clock are sampled exactly, so results are distributed identically to
    {!Sim} — only Θ(n³) null busywork is skipped, which lets the Table 1
    row 1 experiments scale to populations of several thousands.

    As a bonus, silence (Observation 2.2's notion) is an O(1) observation
    here: the configuration is silent exactly when [W = 0], so
    stabilization of silent protocols is measured {e exactly}, with no
    confirmation window.

    Correctness is tracked incrementally through the same {!Monitor} the
    agent engine uses, fed with multiset deltas, and the engine supports
    the full fault-injection surface ({!inject}, {!corrupt}) so recovery
    experiments run at populations the agent engine cannot reach. *)

type 'a t

val make : protocol:'a Protocol.t -> init:'a array -> rng:Prng.t -> 'a t
(** Requires [protocol.deterministic]; raises [Invalid_argument] otherwise.
    States are interned in hash buckets keyed by the polymorphic
    [Hashtbl.hash], so the protocol's [equal] must coincide with structural
    equality — true for the plain-data states of the deterministic
    protocols in this repository. *)

val protocol : 'a t -> 'a Protocol.t

val n : 'a t -> int

val interactions : 'a t -> int
(** Interactions elapsed, including skipped null ones. *)

val parallel_time : 'a t -> float

val events : 'a t -> int
(** Productive interactions executed. *)

val is_silent : 'a t -> bool
(** [W = 0]: no applicable non-null transition remains. *)

val ranking_correct : 'a t -> bool
val leader_correct : 'a t -> bool
val leader_count : 'a t -> int

val ranked_agents : 'a t -> int
(** Agents currently observing some rank (with multiplicity). *)

(** {2 Engine counters}

    Plain O(1) reads over state the engine keeps anyway; the telemetry
    layer scrapes them through [Exec.stats]. *)

val monitor_updates : 'a t -> int
(** Correctness-monitor re-checks (multiset deltas processed). *)

val closure_size : 'a t -> int
(** Distinct states interned by the probe fixpoint so far — the size of
    the discovered transition closure (counter-carrying protocols explode
    here; see ROADMAP). *)

val probed_states : 'a t -> int
(** States whose ordered pairs have all been probed ([≤ closure_size];
    equal after every public operation). *)

val productive_pairs : 'a t -> int
(** Ordered state pairs discovered to have a non-null transition. *)

val productive_weight : 'a t -> int
(** Current [W]: ordered {e agent} pairs whose interaction would change
    state. [0] iff {!is_silent}. *)

val null_skipped : 'a t -> int
(** [interactions - events]: null interactions skipped (or fast-forwarded
    over) rather than simulated. *)

val step_event : 'a t -> unit
(** Advance past the (geometrically many) null interactions to the next
    productive one and execute it. No-op on a silent configuration. *)

val advance : 'a t -> until:int -> bool
(** [advance t ~until] moves the interaction clock forward by at most one
    productive event, never past interaction [until].

    - If the configuration is silent, the clock jumps to [until] and the
      result is [false] (nothing can ever happen again).
    - Otherwise a geometric skip is sampled. If the next productive
      interaction lands at or before [until] it is executed; if it lands
      beyond, the clock stops at [until] and the sample is discarded —
      exact in law, because the geometric skip is memoryless. Returns
      [true].

    This is the primitive {!Runner} drives: calling [advance] in a loop
    with a fixed [until] eventually parks the clock at [until], which is
    how a confirmation window elapses over a silent suffix. *)

(** {2 Configuration access and fault injection}

    Agent identities are a deterministic view over the state multiset:
    agent [i] holds the [i]-th state when the configuration is enumerated
    in state-interning order (the order {!snapshot} uses). Agents are
    exchangeable under the uniform scheduler, so this gives [inject] and
    [corrupt] the same distributional semantics as on {!Sim}. *)

val state : 'a t -> int -> 'a
val snapshot : 'a t -> 'a array

val inject : 'a t -> int -> 'a -> unit
(** [inject t i s] overwrites agent [i]'s state with [s]. Raises
    [Invalid_argument] when [i] is outside [0, n) — same contract as
    [Sim.inject]. *)

val corrupt : 'a t -> rng:Prng.t -> fraction:float -> (Prng.t -> 'a) -> int
(** [corrupt t ~rng ~fraction gen] overwrites [max 1 (round (fraction·n))]
    distinct agents (0 when [fraction = 0.]) with states drawn from [gen].
    Returns the number of corrupted agents. Same contract as
    {!Sim.corrupt}, including [Invalid_argument] on a [fraction] outside
    [0,1]. *)

val distinct_states : 'a t -> ('a * int) list
(** Present states with their multiplicities. *)

type outcome = {
  silent : bool;  (** reached a silent configuration *)
  correct : bool;  (** the silent configuration ranks 1..n *)
  stabilization_time : float;
      (** parallel time of the last productive interaction — for a silent
          protocol this is the exact stabilization time *)
  events : int;
  interactions : int;
}

val run_to_silence : ?max_events:int -> 'a t -> outcome
(** Execute productive events until silence (or until [max_events],
    default 100·n²). *)
