(** Lazy count-based (Gillespie-style) simulation for deterministic
    protocols.

    {!Sim} executes every scheduled interaction, productive or not; near a
    silent configuration almost all interactions are null, so simulating
    Silent-n-state-SSR's Θ(n²) parallel time costs Θ(n³) steps. This engine
    instead tracks the configuration as {e counts of distinct states} —
    generalized to per-(state, degree-class) counts when a
    {!Topology.classes} lumping is supplied — discovers which ordered cell
    pairs have non-null transitions (possible because the protocol is
    deterministic), and jumps straight over interactions that are known to
    be null: the number of intervening skipped interactions is geometric
    with the exact per-tick probability of hitting a pair {e not} known
    null. The embedded jump chain and the interaction clock are sampled
    exactly, so results are distributed identically to {!Sim}.

    Pair knowledge is built lazily. Initially live cells are probed
    eagerly against each other when there are few enough of them (the
    engine is then {e drained}: silence is the O(1) observation that no
    productive pair carries weight, so stabilization of silent protocols
    is measured exactly, with no confirmation window), and each cell that
    later {e becomes} live is folded in at that moment. Cells that are
    merely discovered as transition outcomes but never occur are never
    probed — which is what lets counter-carrying protocols such as
    Optimal-silent-SSR run here at n = 10⁶, where the old eager closure
    exploded. When the live-cell set outgrows the eager budget the engine
    drops (permanently) to fully lazy probing: pairs are probed the first
    time the scheduler draws them, null outcomes are cached under a
    budget, and the silence oracle degrades to three-valued (see
    {!silent}).

    Correctness is tracked incrementally through the same {!Monitor} the
    agent engine uses, fed with multiset deltas, and the engine supports
    the full fault-injection surface ({!inject}, {!corrupt}) so recovery
    experiments run at populations the agent engine cannot reach. *)

type 'a t

val make :
  ?classes:Topology.classes ->
  ?init_probe:bool ->
  protocol:'a Protocol.t ->
  init:'a array ->
  rng:Prng.t ->
  unit ->
  'a t
(** Requires [protocol.deterministic]; raises [Invalid_argument] otherwise.
    States are interned in hash buckets keyed by the polymorphic
    [Hashtbl.hash], so the protocol's [equal] must coincide with structural
    equality — true for the plain-data states of the deterministic
    protocols in this repository.

    [classes] lumps the population by topology degree class (default: the
    single class of the complete graph). When the lumping is not exact
    ({!lumping_exact} is [false]) the run is the annealed approximation of
    the fixed graph — callers should surface that.

    [init_probe] forces ([true]) or suppresses ([false]) the eager probe
    of the initially live cells; by default it runs when there are at most
    4096 of them. *)

val protocol : 'a t -> 'a Protocol.t

val n : 'a t -> int

val interactions : 'a t -> int
(** Interactions elapsed, including skipped null ones. *)

val parallel_time : 'a t -> float

val events : 'a t -> int
(** Productive interactions executed. *)

val is_silent : 'a t -> bool
(** The configuration is {e provably} silent: every scheduled pair is
    known null. In drained mode this is exactly the old [W = 0] oracle; in
    lazy mode a genuinely silent configuration may not (yet) be provable —
    see {!silent} for the honest three-valued answer. *)

val silent : 'a t -> bool option
(** [Some true] when provably silent; [Some false] when provably not
    (drained mode knows every live pair); [None] when the lazy engine
    cannot decide. This is what {!Exec} exposes as the silence oracle, so
    measurement layers fall back to confirmation windows exactly when
    needed. *)

val drained : 'a t -> bool
(** Every live cell is in the probed set (eager mode); silence is decided
    in O(1) and hits are served from the productive adjacency alone. *)

val lumping_exact : 'a t -> bool
(** The supplied degree-class lumping reproduces the agent chain exactly
    (every class-pair subgraph empty or complete). Always [true] without
    [classes]. *)

val ranking_correct : 'a t -> bool
val leader_correct : 'a t -> bool
val leader_count : 'a t -> int

val ranked_agents : 'a t -> int
(** Agents currently observing some rank (with multiplicity). *)

(** {2 Engine counters}

    Plain O(1) reads over state the engine keeps anyway; the telemetry
    layer scrapes them through [Exec.stats]. *)

val monitor_updates : 'a t -> int
(** Correctness-monitor re-checks (multiset deltas processed). *)

val closure_size : 'a t -> int
(** Distinct (state, degree-class) cells interned so far. Unlike the old
    eager engine this is {e not} the transitive closure: outcome cells
    that never become live are interned but never probed. *)

val pairs_probed : 'a t -> int
(** Ordered cell pairs whose transition has been evaluated (eager sweeps,
    liveness-gain folds and lazy on-demand probes alike). *)

val pairs_cached : 'a t -> int
(** Entries in the explicit pair cache (productive pairs plus budgeted
    lazy null outcomes; pairs within the probed set are implicit and not
    counted). *)

val classes_live : 'a t -> int
(** Cells with a positive count — the live support of the lumped
    configuration. *)

val productive_pairs : 'a t -> int
(** Ordered cell pairs discovered to have a non-null transition. *)

val productive_weight : 'a t -> int
(** Ordered {e agent} pairs whose interaction is not known to be null —
    the generalization of the old [W] (and exactly [W] in drained mode).
    [0] iff {!is_silent}. *)

val null_skipped : 'a t -> int
(** [interactions - events]: null interactions skipped (or fast-forwarded
    over) rather than simulated. *)

val step_event : 'a t -> unit
(** Advance past the (geometrically many) known-null interactions to the
    next possibly-interesting one and execute it. In drained mode that
    interaction is always a productive event; in lazy mode it may turn
    out to be a null pair probed for the first time, in which case the
    interaction is consumed but no event fires (and the skip gets
    stronger). No-op on a provably silent configuration. *)

val advance : 'a t -> until:int -> bool
(** [advance t ~until] moves the interaction clock forward by at most one
    possibly-interesting interaction, never past interaction [until].

    - If the configuration is provably silent, the clock jumps to [until]
      and the result is [false] (nothing can ever happen again).
    - Otherwise a geometric skip is sampled. If the next candidate
      interaction lands at or before [until] it is executed; if it lands
      beyond, the clock stops at [until] and the sample is discarded —
      exact in law, because the geometric skip is memoryless. Returns
      [true].

    This is the primitive {!Runner} drives: calling [advance] in a loop
    with a fixed [until] eventually parks the clock at [until], which is
    how a confirmation window elapses over a silent suffix. *)

(** {2 Configuration access and fault injection}

    Agent identities are a deterministic view over the state multiset:
    agent [i] holds the [r]-th state of its degree class enumerated in
    cell-interning order (the order {!snapshot} uses), where [r] is [i]'s
    rank among the class members. Agents of one class are exchangeable
    under the class-uniform scheduler, so this gives [inject] and
    [corrupt] the same distributional semantics as on {!Sim}. *)

val state : 'a t -> int -> 'a
val snapshot : 'a t -> 'a array

val inject : 'a t -> int -> 'a -> unit
(** [inject t i s] overwrites agent [i]'s state with [s]. Raises
    [Invalid_argument] when [i] is outside [0, n) — same contract as
    [Sim.inject]. *)

val corrupt : 'a t -> rng:Prng.t -> fraction:float -> (Prng.t -> 'a) -> int
(** [corrupt t ~rng ~fraction gen] overwrites [max 1 (round (fraction·n))]
    distinct agents (0 when [fraction = 0.]) with states drawn from [gen].
    Returns the number of corrupted agents. Same contract as
    {!Sim.corrupt}, including [Invalid_argument] on a [fraction] outside
    [0,1]. *)

val distinct_states : 'a t -> ('a * int) list
(** Present states with their multiplicities (cells of one state in
    several degree classes are merged). *)

type outcome = {
  silent : bool;  (** reached a provably silent configuration *)
  correct : bool;  (** the silent configuration ranks 1..n *)
  stabilization_time : float;
      (** parallel time of the last executed interaction — for a silent
          protocol on the drained engine this is the exact stabilization
          time *)
  events : int;
  interactions : int;
}

val run_to_silence : ?max_events:int -> 'a t -> outcome
(** Execute engine steps until provable silence (or until [max_events]
    steps, default 100·n²; in lazy mode a step may be a first-probe null
    rather than a productive event, and a genuinely silent configuration
    that cannot be proved silent runs the budget out). *)
