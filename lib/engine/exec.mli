(** Executor interface: one surface over both simulation engines.

    The repository has two ways to run a protocol: {!Sim}, the agent
    engine, which executes every scheduled interaction; and {!Count_sim},
    the count-based engine, which tracks the configuration as a state
    multiset and jumps between productive interactions. Measurement policy
    ({!Runner}), experiments and the CLI should not care which one is
    underneath. [Exec] packages either engine as a first-class module
    exposing the operations they need:

    - {!advance}: move the interaction clock forward, bounded by [until];
    - observation: {!interactions}, {!events}, {!parallel_time},
      correctness ({!ranking_correct}, {!leader_correct}, {!leader_count},
      {!ranked_agents}), {!snapshot}, {!state};
    - fault injection: {!inject}, {!corrupt};
    - {!silent}: the exact-silence oracle — [Some true] means {e no}
      non-null transition is applicable, ever again, so silent-protocol
      stabilization can be reported exactly instead of waiting out a
      confirmation window. The agent engine cannot observe this in O(1)
      and answers [None], as does the count engine's lazy mode when
      silence is not (yet) provable;
    - {!on}: subscription to the {!Instrument} event stream ([Step],
      [Correct_entered], [Correct_lost], [Silence], [Fault]).

    Construct with {!of_sim} / {!of_count_sim} to wrap an engine you
    already hold, or {!make} to pick by {!kind}. *)

module type INSTANCE = sig
  type state

  val protocol : state Protocol.t

  val advance : until:int -> bool
  (** Move the clock forward by at most one state-changing step, never
      past interaction [until]. Returns [false] when the configuration is
      provably silent (nothing will ever change again; the clock has been
      fast-forwarded to [until]); [true] otherwise.

      Agent engine: executes exactly one interaction (productive or null)
      and always returns [true]. Count engine: executes the next
      productive interaction if it lands at or before [until], else parks
      the clock at [until]; exact in law by memorylessness of the
      geometric null-skip. *)

  val interactions : unit -> int
  val events : unit -> int
  (** State-changing interactions executed. On the agent engine this
      equals {!interactions} (null interactions are not detected). *)

  val parallel_time : unit -> float
  val ranking_correct : unit -> bool
  val leader_correct : unit -> bool
  val leader_count : unit -> int
  val ranked_agents : unit -> int

  val silent : unit -> bool option
  (** Exact-silence oracle: [Some b] iff the engine can decide silence in
      O(1); [None] when it cannot ([Sim] always; [Count_sim] in lazy mode
      when silence is not provable — see {!Count_sim.silent}). *)

  val state : int -> state
  val snapshot : unit -> state array

  val inject : int -> state -> unit
  (** Overwrite one agent's state (transient fault). Emits
      {!Instrument.Fault}. *)

  val corrupt : rng:Prng.t -> fraction:float -> (Prng.t -> state) -> int
  (** Corrupt a fraction of the agents; returns how many. Emits
      {!Instrument.Fault}. *)

  val on : (Instrument.event -> unit) -> unit
  (** Subscribe a handler to the event stream. Handlers run synchronously,
      in subscription order, inside {!advance}/{!inject}/{!corrupt}. *)

  val emit : Instrument.event -> unit
  (** Publish an event to the subscribers — used by drivers ({!Runner})
      to put policy-level events ([Correct_entered], [Correct_lost]) on
      the same stream. *)

  val stats : unit -> (string * float) list
  (** Engine-internal counters, scraped by the telemetry layer into its
      metrics registry. Both engines report [interactions], [events] and
      [monitor_updates]; the count engine adds [null_skipped],
      [closure_size] (interned (state, class) cells), [pairs_probed],
      [pairs_cached], [classes_live], [productive_pairs] and
      [productive_weight]. All are O(1) reads of counters the engines
      keep anyway — calling this costs nothing on a hot path and not
      calling it costs nothing at all. *)
end

type 'a t = (module INSTANCE with type state = 'a)

type kind = Agent | Count

val kind_to_string : kind -> string

val of_sim : 'a Sim.t -> 'a t
(** Wrap an agent-engine simulation. The wrapper only observes the
    simulation — stepping the underlying [Sim.t] directly still works but
    bypasses event emission. *)

val of_count_sim : 'a Count_sim.t -> 'a t
(** Wrap a count-based simulation. Same caveat as {!of_sim}. *)

val make :
  ?classes:Topology.classes ->
  kind:kind ->
  protocol:'a Protocol.t ->
  init:'a array ->
  rng:Prng.t ->
  unit ->
  'a t
(** Build a fresh engine of the given kind and wrap it. [Count] requires
    [protocol.deterministic] (raises [Invalid_argument] otherwise, like
    {!Count_sim.make}) and honors [classes] (degree-class lumping; see
    {!Count_sim.make}). The agent engine ignores [classes] — its topology
    comes in through [Sim]'s scheduler sampler. *)

(** {2 Plain-function view}

    Unpacking the first-class module at every call site is noisy; these
    wrappers do it once. *)

val protocol : 'a t -> 'a Protocol.t
val n : 'a t -> int
val advance : 'a t -> until:int -> bool
val interactions : 'a t -> int
val events : 'a t -> int
val parallel_time : 'a t -> float
val ranking_correct : 'a t -> bool
val leader_correct : 'a t -> bool
val leader_count : 'a t -> int
val ranked_agents : 'a t -> int
val silent : 'a t -> bool option
val state : 'a t -> int -> 'a
val snapshot : 'a t -> 'a array
val inject : 'a t -> int -> 'a -> unit
val corrupt : 'a t -> rng:Prng.t -> fraction:float -> (Prng.t -> 'a) -> int
val on : 'a t -> (Instrument.event -> unit) -> unit
val emit : 'a t -> Instrument.event -> unit
val stats : 'a t -> (string * float) list
