(** Growable Fenwick tree over non-negative integer weights.

    Supports appending zero-weight slots, point updates, O(1) total and
    per-slot reads, and weighted selection: {!find} maps a uniform integer
    target in [0, total) to a slot with probability proportional to its
    weight, in O(log capacity). The count engine keeps one tree per degree
    class (slot = class-local cell, weight = agent count) to draw a
    uniformly random agent of that class without scanning the cells. *)

type t

val create : unit -> t
(** Empty tree (no slots). *)

val length : t -> int
(** Slots appended so far. *)

val total : t -> int
(** Sum of all slot weights. *)

val weight : t -> int -> int
(** Current weight of a slot. Raises [Invalid_argument] out of range. *)

val append : t -> unit
(** Append one slot with weight 0. Amortized O(1). *)

val add : t -> int -> int -> unit
(** [add t i delta] adjusts slot [i]'s weight by [delta]. O(log). *)

val find : t -> int -> int
(** [find t target] for [0 <= target < total t]: the unique slot [i] with
    [sum weights.(0..i-1) <= target < sum weights.(0..i)]. A uniform
    [target] therefore selects slots proportionally to weight. Raises
    [Invalid_argument] when [target] is out of range. *)
