type 'a t = {
  n : int;
  rank : 'a -> int option;
  is_leader : 'a -> bool;
  counts : int array;  (* counts.(r) = agents observing rank r, r in 1..n *)
  mutable singletons : int;  (* ranks in 1..n with count exactly 1 *)
  mutable ranked : int;  (* agents observing any rank *)
  mutable leaders : int;
  mutable updates : int;  (* add/remove operations processed (telemetry) *)
}

(* Out-of-range ranks are counted as unranked: a protocol bug or adversarial
   state cannot crash the monitor, only keep it incorrect. *)
let in_range t r = r >= 1 && r <= t.n

let add_rank t = function
  | None -> ()
  | Some r ->
      if in_range t r then begin
        t.ranked <- t.ranked + 1;
        let c = t.counts.(r) + 1 in
        t.counts.(r) <- c;
        if c = 1 then t.singletons <- t.singletons + 1
        else if c = 2 then t.singletons <- t.singletons - 1
      end

let remove_rank t = function
  | None -> ()
  | Some r ->
      if in_range t r then begin
        t.ranked <- t.ranked - 1;
        let c = t.counts.(r) - 1 in
        t.counts.(r) <- c;
        if c = 1 then t.singletons <- t.singletons + 1
        else if c = 0 then t.singletons <- t.singletons - 1
      end

let add t state =
  t.updates <- t.updates + 1;
  add_rank t (t.rank state);
  if t.is_leader state then t.leaders <- t.leaders + 1

let remove t state =
  t.updates <- t.updates + 1;
  remove_rank t (t.rank state);
  if t.is_leader state then t.leaders <- t.leaders - 1

let update t ~old_state ~new_state =
  remove t old_state;
  add t new_state

let create (protocol : 'a Protocol.t) population =
  let t =
    {
      n = protocol.Protocol.n;
      rank = protocol.Protocol.rank;
      is_leader = protocol.Protocol.is_leader;
      counts = Array.make (protocol.Protocol.n + 1) 0;
      singletons = 0;
      ranked = 0;
      leaders = 0;
      updates = 0;
    }
  in
  Array.iter (add t) population;
  t

let ranking_correct t = t.singletons = t.n

let leader_correct t = t.leaders = 1

let leader_count t = t.leaders

let ranked_agents t = t.ranked

let distinct_singleton_ranks t = t.singletons

let updates t = t.updates
