(** Population-protocol definitions.

    A population protocol (Angluin et al.) is a pairwise transition function
    over agent states. The scheduler repeatedly picks a uniformly random
    {e ordered} pair of distinct agents (initiator, responder) and replaces
    their states with the transition's output. Protocols in this repository
    are {e strongly nonuniform} (they hardcode the population size [n], as
    Theorem 2.1 of the paper proves any self-stabilizing leader election
    protocol must), so constructors receive [n] explicitly and record it.

    A protocol value also carries the observation functions that define
    correctness for the ranking and leader election tasks:
    - ranking is correct when the observed ranks are exactly a permutation
      of [1..n];
    - leader election is correct when exactly one agent observes as leader.

    The transition receives a {!Prng.t}: the paper allows randomized
    transitions (they can be derandomized by synthetic coins without
    changing the bounds). Protocols with [deterministic = true] promise to
    never consult the generator, which enables generic silence checking. *)

type 'a t = {
  name : string;  (** human-readable protocol name *)
  n : int;  (** population size the protocol is compiled for *)
  transition : Prng.t -> 'a -> 'a -> 'a * 'a;
      (** [transition rng initiator responder] returns the new
          (initiator, responder) states. *)
  deterministic : bool;  (** [true] iff [transition] never draws randomness *)
  equal : 'a -> 'a -> bool;  (** structural state equality *)
  pp : Format.formatter -> 'a -> unit;  (** state printer for traces *)
  rank : 'a -> int option;
      (** observed rank in [1..n], or [None] when the agent currently has no
          rank (e.g. unsettled or resetting) *)
  is_leader : 'a -> bool;  (** observed leader bit *)
}

val leader_from_rank : ('a -> int option) -> 'a -> bool
(** The paper's convention: the leader is the agent with rank 1. *)

val validate : ?config:'a array -> 'a t -> unit
(** Sanity-checks protocol metadata ([n >= 2], non-empty name); raises
    [Invalid_argument] otherwise. When [config] is given (simulator
    constructors pass the initial configuration), additionally checks each
    state's observations: any observed rank lies in [1..n], and the leader
    bit agrees with the paper's [leader <=> rank = 1] convention
    ({!leader_from_rank}). *)
