(** Fixed-size domain pool for embarrassingly parallel trial batches.

    A pool owns [jobs - 1] worker domains plus the submitting domain (which
    drains the same queue while it waits), so [jobs] tasks run concurrently.
    Tasks are closures; each batch returns its results {e in submission
    order}, regardless of which domain finished which task first, and an
    exception raised by a task is captured and re-raised in the submitter
    once the whole batch has drained — the pool itself never deadlocks or
    leaks a wedged domain on a failing task.

    {2 Seeding discipline for deterministic parallelism}

    The pool schedules tasks in a nondeterministic interleaving, so any
    randomized task must receive its entire entropy supply {e before}
    dispatch. The convention used throughout this repository
    (see [Experiments.Exp_common.run_trials]) is:

    + derive one root generator from the experiment seed;
    + pre-split one child [Prng.t] per trial index with [Prng.split_many]
      — a purely sequential, deterministic derivation;
    + hand child [i] to trial [i] and let the trial draw only from it.

    Because child [i] depends only on the seed and on [i] — never on the
    execution order — the results of a batch are bit-for-bit identical for
    every [jobs] value (1, 4, [Domain.recommended_domain_count ()], …).
    Never share a [Prng.t] between tasks: the draws would interleave
    nondeterministically and, worse, xoshiro state updates are not atomic. *)

type t
(** A pool of worker domains with a shared work queue. *)

val default_jobs : unit -> int
(** The [REPRO_JOBS] environment variable when set (must be a positive
    integer), otherwise [Domain.recommended_domain_count ()]. This is the
    default parallelism of every [--jobs] flag in the repository. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs >= 1]; raises
    [Invalid_argument] otherwise). [jobs = 1] spawns no domains at all:
    batches run sequentially on the submitting domain, in index order. *)

val jobs : t -> int
(** The parallelism the pool was created with. *)

val run : t -> (unit -> 'a) array -> 'a array
(** [run pool tasks] executes every task (the submitter helps drain the
    queue) and returns their results in index order. If any task raised,
    the exception of the lowest-indexed failing task is re-raised (with
    its backtrace) after {e all} tasks have finished, so the pool remains
    usable. Raises [Invalid_argument] on a pool that was shut down. *)

val submit : t -> (unit -> unit) -> unit
(** [submit pool task] enqueues one detached task and returns immediately
    — the long-lived-service counterpart of {!run}, used by the fleet
    orchestrator to dispatch jobs while its own domain runs the event
    loop. The submitter does not help drain, so the pool must have been
    created with [jobs >= 2] (at least one worker domain); raises
    [Invalid_argument] otherwise, and on a pool that was shut down.
    Completion is the task's own business (signal through shared state);
    {!shutdown} still waits for every submitted task. An exception
    escaping the task is swallowed — wrap the body if failures must be
    observed (see [Fleet.Supervise]). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] is [run pool] over [fun () -> f xs.(i)]. *)

val init : t -> int -> (int -> 'a) -> 'a array
(** [init pool k f] is the parallel [Array.init k f]. *)

type domain_stats = {
  tasks : int;  (** tasks this domain executed *)
  busy_s : float;  (** wall-clock seconds it spent inside tasks *)
}

val stats : t -> domain_stats array
(** Per-domain utilization since the pool was created, indexed by domain
    slot: slot 0 is the submitting domain, slots [1..jobs-1] the workers.
    Updated once per task (not per interaction), so keeping it costs
    nothing measurable; scraped into the telemetry metrics dump to show
    how evenly a trial batch spread. Safe to call while a batch runs
    (a consistent snapshot of completed tasks). *)

val shutdown : t -> unit
(** Signals the workers to exit once the queue is empty and joins them.
    Idempotent. Subsequent [run]/[map]/[init] calls raise. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down when
    [f] returns or raises. [jobs] defaults to {!default_jobs}[ ()]. *)
