type 'b t = {
  interval : int;
  mutable next_at : int;
  mutable samples : (float * 'b) list;  (* reversed *)
}

let collector ~interval () =
  if interval <= 0 then invalid_arg "Trace.collector: interval must be positive";
  { interval; next_at = 0; samples = [] }

let record t time value = t.samples <- (time, value) :: t.samples

let hook t metric sim =
  if Sim.interactions sim >= t.next_at then begin
    record t (Sim.parallel_time sim) (metric sim);
    t.next_at <- Sim.interactions sim + t.interval
  end

let series t = List.rev t.samples

let mark t sim value = record t (Sim.parallel_time sim) value
