(** Structured execution events.

    Executors ({!Exec}) and the measurement policy ({!Runner}) publish what
    happens during a run — interactions executed, correctness gained and
    lost, silence reached, faults injected — as a typed event stream that
    observers subscribe to with {!Exec.on}. This replaces the ad-hoc
    [?on_step] callback the runner used to take (and the deleted [Trace]
    module, which only understood the per-interaction agent engine): the
    same subscriber works unchanged on both the agent engine and the
    count-based engine, where time advances in jumps.

    Events are monomorphic (they carry clock readings, not states);
    handlers that need configuration detail close over the executor and
    query it.

    For machine consumption, the telemetry library ([Telemetry.Events])
    encodes this stream as versioned JSONL, one self-describing object per
    event ([ssr_sim --events FILE]); {!label} provides the stable [type]
    discriminator of that schema. *)

type event =
  | Step of { interactions : int; time : float }
      (** a state-changing interaction was executed; on the count-based
          engine this is a productive interaction and the clock includes
          the skipped null interactions before it *)
  | Correct_entered of { interactions : int; time : float }
      (** the runner's correctness predicate became true *)
  | Correct_lost of { interactions : int; time : float }
      (** correctness was lost again — a violation *)
  | Silence of { interactions : int; time : float }
      (** the configuration became provably silent (count engine only) *)
  | Fault of { agents : int; interactions : int; time : float }
      (** [agents] states were adversarially overwritten *)

val interactions : event -> int
val time : event -> float
val pp : Format.formatter -> event -> unit

val label : event -> string
(** Stable lowercase discriminator (["step"], ["correct_entered"],
    ["correct_lost"], ["silence"], ["fault"]) — the [type] field of the
    JSONL schema. *)

(** {2 Sampled time series}

    A collector subscribes via [Exec.on exec (Instrument.sampled c metric)]
    and records [metric ()] every [interval] interactions (plus once per
    fault, so recovery timelines keep their discontinuities). *)

type 'b collector

val collector : interval:int -> unit -> 'b collector
(** Samples every [interval] interactions (and at the first event). *)

val sampled : 'b collector -> (unit -> 'b) -> event -> unit
(** [sampled c metric] is an event handler feeding [c]. *)

val record : 'b collector -> time:float -> 'b -> unit
(** Force-record a sample now (e.g. right after a fault injection). *)

val series : 'b collector -> (float * 'b) list
(** Chronological [(parallel_time, value)] samples. *)
