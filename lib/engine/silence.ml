let distinct_states equal config =
  let add acc s =
    let rec bump = function
      | [] -> [ (s, 1) ]
      | (s', c) :: rest -> if equal s s' then (s', c + 1) :: rest else (s', c) :: bump rest
    in
    bump acc
  in
  Array.fold_left add [] config

let configuration_is_silent (protocol : 'a Protocol.t) config =
  if not protocol.Protocol.deterministic then
    invalid_arg "Silence.configuration_is_silent: protocol is randomized";
  let equal = protocol.Protocol.equal in
  (* The transition promises not to consult the generator; pass a fixed one
     so a violation of that promise is at least deterministic. *)
  let rng = Prng.create ~seed:0 in
  let states = distinct_states equal config in
  let pair_applicable (s1, c1) (s2, c2) =
    if equal s1 s2 then c1 >= 2 else c1 >= 1 && c2 >= 1
  in
  let null_transition s1 s2 =
    let s1', s2' = protocol.Protocol.transition rng s1 s2 in
    equal s1 s1' && equal s2 s2'
  in
  List.for_all
    (fun (s1, c1) ->
      List.for_all
        (fun (s2, c2) -> (not (pair_applicable (s1, c1) (s2, c2))) || null_transition s1 s2)
        states)
    states
