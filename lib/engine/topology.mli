(** Interaction-graph topologies.

    The paper studies the complete interaction graph (any pair may
    interact) and notes it is the hardest case for self-stabilizing leader
    election, while non-complete topologies are studied in related work
    ([10, 25, 26, 57, 60]). This module provides interaction graphs and a
    scheduler sampler — a uniformly random {e edge} with a uniformly random
    orientation — to plug into {!Sim}, so the protocols built for the
    complete graph can be observed on rings, stars and random regular
    graphs (where direct-collision detection genuinely breaks, motivating
    the paper's assumption). *)

type t

val complete : n:int -> t

val ring : n:int -> t
(** Cycle 0–1–…–(n−1)–0. Requires [n >= 3]. *)

val star : n:int -> t
(** Hub agent 0 connected to everyone else. *)

val random_regular : Prng.t -> n:int -> degree:int -> t
(** A connected [degree]-regular graph, built as the union of [degree/2]
    uniformly random Hamiltonian cycles (hence [degree] must be even,
    ≥ 2); resampled until simple. Requires [n >= degree + 1]. *)

val size : t -> int
(** Number of agents. *)

val edge_count : t -> int

val degree : t -> int -> int

val is_connected : t -> bool

val sampler : t -> Prng.t -> int * int
(** Uniform random edge, uniform random orientation — the scheduler for
    {!Sim.make}'s [sampler] argument. On {!complete} this coincides with
    the paper's uniform ordered-pair scheduler. *)

val name : t -> string
