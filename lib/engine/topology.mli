(** Interaction-graph topologies.

    The paper studies the complete interaction graph (any pair may
    interact) and notes it is the hardest case for self-stabilizing leader
    election, while non-complete topologies are studied in related work
    ([10, 25, 26, 57, 60]). This module provides interaction graphs and a
    scheduler sampler — a uniformly random {e edge} with a uniformly random
    orientation — to plug into {!Sim}, so the protocols built for the
    complete graph can be observed on rings, stars and random regular
    graphs (where direct-collision detection genuinely breaks, motivating
    the paper's assumption). *)

type t

val complete : n:int -> t

val ring : n:int -> t
(** Cycle 0–1–…–(n−1)–0. Requires [n >= 3]. *)

val star : n:int -> t
(** Hub agent 0 connected to everyone else. *)

val random_regular : Prng.t -> n:int -> degree:int -> t
(** A connected [degree]-regular graph, built as the union of [degree/2]
    uniformly random Hamiltonian cycles (hence [degree] must be even,
    ≥ 2); resampled until simple. Requires [n >= degree + 1]. *)

val size : t -> int
(** Number of agents. *)

val edge_count : t -> int

val degree : t -> int -> int

val is_connected : t -> bool

val sampler : t -> Prng.t -> int * int
(** Uniform random edge, uniform random orientation — the scheduler for
    {!Sim.make}'s [sampler] argument. On {!complete} this coincides with
    the paper's uniform ordered-pair scheduler. *)

val name : t -> string

(** {2 Degree-class lumping}

    The count engine generalizes its per-state counts to per-(state,
    degree-class) counts: agents of equal degree are exchangeable under
    the uniform-edge scheduler whenever every class-pair subgraph is
    empty or complete, and then the lumped dynamics are {e exactly} the
    original chain projected onto counts. [classes] carries what the
    engine needs: per-class sizes, the ordered class-pair mixing counts
    [mix] (each undirected edge contributes one pair per orientation, so
    they sum to twice the edge count), and the [exact] verdict.

    When [exact] is [false] (e.g. a ring or a random regular graph, where
    same-class subgraphs are neither empty nor complete), running the
    count engine over these classes is the {e annealed} approximation:
    the degree sequence is honored but the fixed wiring is resampled
    every interaction — equivalently, a [nc = 1] regular graph lumps to
    complete-graph dynamics. Callers are expected to surface that
    honestly (see [ssr_sim]'s warning and Exp_topology's gap
    measurement). *)

type classes = {
  graph : string;  (** name of the topology the classes were built from *)
  agents : int;  (** total population *)
  nc : int;  (** number of degree classes, ordered by ascending degree *)
  class_of : int array;  (** agent -> class id *)
  sizes : int array;  (** class id -> population *)
  members : int array array;  (** class id -> member agents, ascending *)
  mix : int array array;
      (** [mix.(a).(b)]: ordered adjacent pairs (initiator in [a],
          responder in [b]); sums to [2 * edge_count] *)
  exact : bool;  (** every class-pair subgraph empty or complete *)
}

val degree_classes : t -> classes
(** Lump a topology by degree. O(n + edges). *)

val complete_classes : n:int -> classes
(** The trivial single-class lumping of {!complete} — what the count
    engine uses when no topology is given. Requires [n >= 2]. *)
