(** Silence checking.

    A configuration is {e silent} when no applicable transition changes it —
    every ordered pair of present states maps to itself (paper, Section 2).
    For deterministic protocols this is decidable by enumerating the distinct
    states present and applying the transition to every ordered pair whose
    multiplicities allow it. Observation 2.2 builds on this notion: any
    silent SSLE protocol needs Ω(n) expected time. *)

val configuration_is_silent : 'a Protocol.t -> 'a array -> bool
(** [configuration_is_silent protocol config] decides silence of [config].
    Requires [protocol.deterministic]; raises [Invalid_argument] otherwise
    (a randomized transition has no well-defined single successor).

    Cost: O(n·d + d²) transition applications for [d] distinct states. *)

val distinct_states : ('a -> 'a -> bool) -> 'a array -> ('a * int) list
(** [distinct_states equal config] lists the distinct states present with
    their multiplicities, in first-occurrence order. *)
