type 'a t = {
  name : string;
  n : int;
  transition : Prng.t -> 'a -> 'a -> 'a * 'a;
  deterministic : bool;
  equal : 'a -> 'a -> bool;
  pp : Format.formatter -> 'a -> unit;
  rank : 'a -> int option;
  is_leader : 'a -> bool;
}

let leader_from_rank rank state = rank state = Some 1

let validate ?config t =
  if t.n < 2 then invalid_arg "Protocol.validate: population size must be >= 2";
  if String.length t.name = 0 then invalid_arg "Protocol.validate: empty name";
  match config with
  | None -> ()
  | Some config ->
      Array.iteri
        (fun i s ->
          (match t.rank s with
          | Some r when r < 1 || r > t.n ->
              invalid_arg
                (Printf.sprintf
                   "Protocol.validate: %s: agent %d observes rank %d outside 1..%d" t.name i r
                   t.n)
          | Some _ | None -> ());
          if t.is_leader s <> leader_from_rank t.rank s then
            invalid_arg
              (Printf.sprintf
                 "Protocol.validate: %s: agent %d breaks the leader <=> rank 1 convention"
                 t.name i))
        config
