type 'a t = {
  name : string;
  n : int;
  transition : Prng.t -> 'a -> 'a -> 'a * 'a;
  deterministic : bool;
  equal : 'a -> 'a -> bool;
  pp : Format.formatter -> 'a -> unit;
  rank : 'a -> int option;
  is_leader : 'a -> bool;
}

let leader_from_rank rank state = rank state = Some 1

let validate t =
  if t.n < 2 then invalid_arg "Protocol.validate: population size must be >= 2";
  if String.length t.name = 0 then invalid_arg "Protocol.validate: empty name"
