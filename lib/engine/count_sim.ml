(* Configuration as counts of distinct states, with exact null-interaction
   skipping.

   States are discovered and interned on the fly (the protocol only
   provides equality, so interning is a linear scan over the d distinct
   states seen so far — fine for the O(n)-state protocols this engine
   targets). Every interned state is probed once against every other in
   both orders; the productive ordered pairs form an adjacency structure,
   and the total productive weight

     W = Σ_{(i,j) productive} c_i · (c_j − [i = j])

   is maintained incrementally: an event changes at most four counts, and
   each count change only touches that state's productive partners. The
   next productive interaction is then geometric with success probability
   W / (n·(n−1)), sampled exactly. *)

type 'a t = {
  protocol : 'a Protocol.t;
  rng : Prng.t;
  n : int;
  mutable states : 'a array;  (* interned distinct states, prefix [0, d) *)
  mutable counts : int array;
  mutable outgoing : int list array;  (* j such that (k, j) is productive *)
  mutable incoming : int list array;  (* i such that (i, k) is productive, i <> k *)
  mutable d : int;
  buckets : (int, int list) Hashtbl.t;  (* Hashtbl.hash state -> indices *)
  mutable probed : int;  (* states [0, probed) are pairwise probed *)
  results : (int, int * int) Hashtbl.t;  (* productive (i,j) -> (i', j') *)
  mutable weight : int;  (* W *)
  mutable interactions : int;
  mutable events : int;
  (* ranking/leader monitoring shared with the agent engine, fed with
     multiset deltas instead of per-agent updates *)
  monitor : 'a Monitor.t;
}

let protocol t = t.protocol

let n t = t.n

let interactions t = t.interactions

let parallel_time t = float_of_int t.interactions /. float_of_int t.n

let events t = t.events

let leader_count t = Monitor.leader_count t.monitor

let leader_correct t = Monitor.leader_correct t.monitor

let ranking_correct t = Monitor.ranking_correct t.monitor

let ranked_agents t = Monitor.ranked_agents t.monitor

let monitor_updates t = Monitor.updates t.monitor

let is_silent t = t.weight = 0

let closure_size t = t.d

let probed_states t = t.probed

let productive_pairs t = Hashtbl.length t.results

let productive_weight t = t.weight

let null_skipped t = t.interactions - t.events

let stride = 1 lsl 20

let pair_key i j = (i * stride) + j

let grow t =
  let cap = Array.length t.states in
  if t.d = cap then begin
    let new_cap = max 16 (2 * cap) in
    let states = Array.make new_cap t.states.(0) in
    Array.blit t.states 0 states 0 t.d;
    let counts = Array.make new_cap 0 in
    Array.blit t.counts 0 counts 0 t.d;
    let outgoing = Array.make new_cap [] in
    Array.blit t.outgoing 0 outgoing 0 t.d;
    let incoming = Array.make new_cap [] in
    Array.blit t.incoming 0 incoming 0 t.d;
    t.states <- states;
    t.counts <- counts;
    t.outgoing <- outgoing;
    t.incoming <- incoming
  end

(* Interning is bucketed by the polymorphic hash: the engine requires that
   the protocol's [equal] coincides with structural equality (true for the
   plain-data states of the deterministic protocols it targets). *)
let intern t state =
  let equal = t.protocol.Protocol.equal in
  let h = Hashtbl.hash state in
  let bucket = match Hashtbl.find_opt t.buckets h with Some b -> b | None -> [] in
  match List.find_opt (fun i -> equal t.states.(i) state) bucket with
  | Some i -> i
  | None ->
      grow t;
      let i = t.d in
      t.states.(i) <- state;
      t.counts.(i) <- 0;
      t.d <- t.d + 1;
      Hashtbl.replace t.buckets h (i :: bucket);
      i

(* Directed productive weight of pair (i, j) under current counts. *)
let pair_weight t i j =
  if i = j then t.counts.(i) * (t.counts.(i) - 1) else t.counts.(i) * t.counts.(j)

(* Sum of W-contributions of all productive pairs touching state k. *)
let contribution t k =
  let acc = ref 0 in
  List.iter (fun j -> acc := !acc + pair_weight t k j) t.outgoing.(k);
  List.iter (fun i -> acc := !acc + pair_weight t i k) t.incoming.(k);
  !acc

let change_count t k delta =
  t.weight <- t.weight - contribution t k;
  t.counts.(k) <- t.counts.(k) + delta;
  t.weight <- t.weight + contribution t k;
  if delta > 0 then for _ = 1 to delta do Monitor.add t.monitor t.states.(k) done
  else for _ = 1 to -delta do Monitor.remove t.monitor t.states.(k) done

(* Probe one ordered pair; record productivity. Interning of the result
   states may grow [d]; [ensure_probed] loops until a fixpoint, visiting
   each ordered pair exactly once — at the turn of its larger index. *)
let probe t i j =
  let si = t.states.(i) and sj = t.states.(j) in
  let si', sj' = t.protocol.Protocol.transition t.rng si sj in
  let equal = t.protocol.Protocol.equal in
  if not (equal si si' && equal sj sj') then begin
    let i' = intern t si' and j' = intern t sj' in
    Hashtbl.replace t.results (pair_key i j) (i', j');
    t.outgoing.(i) <- j :: t.outgoing.(i);
    if i <> j then t.incoming.(j) <- i :: t.incoming.(j);
    (* the pair may already carry weight (both counts positive) *)
    t.weight <- t.weight + pair_weight t i j
  end

let ensure_probed t =
  while t.probed < t.d do
    let p = t.probed in
    (* all pairs whose larger index is p *)
    for q = 0 to p do
      probe t p q;
      if q < p then probe t q p
    done;
    t.probed <- p + 1
  done

let make ~protocol ~init ~rng =
  if not protocol.Protocol.deterministic then
    invalid_arg "Count_sim.make: protocol is randomized";
  if Array.length init <> protocol.Protocol.n then
    invalid_arg "Count_sim.make: initial configuration size differs from protocol.n";
  Protocol.validate ~config:init protocol;
  let t =
    {
      protocol;
      rng;
      n = protocol.Protocol.n;
      states = Array.make 16 init.(0);
      counts = Array.make 16 0;
      outgoing = Array.make 16 [];
      incoming = Array.make 16 [];
      d = 0;
      buckets = Hashtbl.create 1024;
      probed = 0;
      results = Hashtbl.create 256;
      weight = 0;
      interactions = 0;
      events = 0;
      monitor = Monitor.create protocol [||];
    }
  in
  Array.iter
    (fun s ->
      let i = intern t s in
      change_count t i 1)
    init;
  ensure_probed t;
  t

let apply_event t i j =
  match Hashtbl.find_opt t.results (pair_key i j) with
  | None -> invalid_arg "Count_sim.apply_event: null pair"
  | Some (i', j') ->
      change_count t i (-1);
      change_count t j (-1);
      change_count t i' 1;
      change_count t j' 1;
      ensure_probed t;
      t.events <- t.events + 1

(* Null interactions before the next productive one: geometric with
   success probability W / (n·(n−1)). *)
let sample_skip t =
  let pairs = float_of_int (t.n * (t.n - 1)) in
  let p = float_of_int t.weight /. pairs in
  if p >= 1.0 then 0
  else begin
    let u = Prng.float t.rng in
    int_of_float (Float.floor (log1p (-.u) /. log1p (-.p)))
  end

(* Select the productive ordered state pair proportionally to weight and
   execute it. *)
let select_and_apply t =
  let target = Prng.int t.rng t.weight in
  let exception Found of int * int in
  try
    let acc = ref 0 in
    for i = 0 to t.d - 1 do
      if t.counts.(i) > 0 then
        List.iter
          (fun j ->
            let w = pair_weight t i j in
            if w > 0 then begin
              acc := !acc + w;
              if !acc > target then raise (Found (i, j))
            end)
          t.outgoing.(i)
    done;
    invalid_arg "Count_sim.step_event: weight accounting broke"
  with Found (i, j) -> apply_event t i j

let step_event t =
  if t.weight > 0 then begin
    let skip = sample_skip t in
    t.interactions <- t.interactions + skip + 1;
    select_and_apply t
  end

let advance t ~until =
  if t.weight = 0 then begin
    (* Every remaining interaction is null: fast-forward the clock. *)
    if t.interactions < until then t.interactions <- until;
    false
  end
  else begin
    let skip = sample_skip t in
    let next = t.interactions + skip + 1 in
    if next > until then
      (* The sampled event lands beyond [until]. Stop the clock there and
         discard the sample: the geometric skip is memoryless, so
         resampling from [until] later is distributed identically. *)
      t.interactions <- until
    else begin
      t.interactions <- next;
      select_and_apply t
    end;
    true
  end

(* Fault injection. Agent identities are a view over the multiset: agent
   [i] holds the [i]-th state of the configuration enumerated in interning
   order (the same order [snapshot] uses). Under the uniform scheduler
   agents are exchangeable, so this fixed enumeration gives [inject] and
   [corrupt] the same semantics as on the agent engine. *)

let owner_of_agent t i =
  if i < 0 || i >= t.n then invalid_arg "Count_sim: agent index out of range";
  let rec find k acc =
    if k >= t.d then invalid_arg "Count_sim: count accounting broke"
    else if acc + t.counts.(k) > i then k
    else find (k + 1) (acc + t.counts.(k))
  in
  find 0 0

let state t i = t.states.(owner_of_agent t i)

let snapshot t =
  let out = Array.make t.n t.states.(0) in
  let idx = ref 0 in
  for k = 0 to t.d - 1 do
    for _ = 1 to t.counts.(k) do
      out.(!idx) <- t.states.(k);
      incr idx
    done
  done;
  out

let replace t ~old_index ~new_state =
  let k_new = intern t new_state in
  (* probe the new state's pairs before any count moves, so the incremental
     weight bookkeeping in [change_count] sees the full adjacency *)
  ensure_probed t;
  change_count t old_index (-1);
  change_count t k_new 1

let inject t i s =
  let k_old = owner_of_agent t i in
  replace t ~old_index:k_old ~new_state:s

let corrupt t ~rng ~fraction gen =
  if not (fraction >= 0.0 && fraction <= 1.0) then
    invalid_arg "Count_sim.corrupt: fraction outside [0,1]";
  let count =
    if fraction = 0.0 then 0
    else max 1 (int_of_float (Float.round (fraction *. float_of_int t.n)))
  in
  let victims = Prng.permutation rng t.n in
  (* resolve all victims against the pre-corruption configuration: the
     indices are distinct, so each removal is backed by the old multiset *)
  let before = snapshot t in
  for k = 0 to count - 1 do
    let old_index = intern t before.(victims.(k)) in
    replace t ~old_index ~new_state:(gen rng)
  done;
  count

type outcome = {
  silent : bool;
  correct : bool;
  stabilization_time : float;
  events : int;
  interactions : int;
}

let run_to_silence ?max_events t =
  let max_events = match max_events with Some m -> m | None -> 100 * t.n * t.n in
  let budget = ref max_events in
  while (not (is_silent t)) && !budget > 0 do
    step_event t;
    decr budget
  done;
  {
    silent = is_silent t;
    correct = ranking_correct t;
    stabilization_time = parallel_time t;
    events = t.events;
    interactions = t.interactions;
  }

let distinct_states t =
  let acc = ref [] in
  for i = t.d - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (t.states.(i), t.counts.(i)) :: !acc
  done;
  !acc
