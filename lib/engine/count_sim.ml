(* Lazy count-engine core: configurations as per-(state, degree-class)
   counts, with exact null-interaction skipping and on-demand pair
   probing.

   == Representation ==

   A "cell" is an interned (state, degree-class) pair; the configuration
   is the vector of cell counts. On the complete graph there is a single
   class and cells are just distinct states — the classic count engine.
   With a {!Topology.classes} lumping, agents of one degree class are
   exchangeable, and when every class-pair subgraph is empty or complete
   the lumped chain is *exactly* the agent chain projected onto counts
   (otherwise it is the annealed approximation; see [lumping_exact]).

   == Knowledge about pairs ==

   The engine's job is to know, for ordered cell pairs, whether the
   deterministic transition is null. Knowledge lives in two tiers:

   - a *probed set* P of cells such that every ordered pair within P has
     been probed. Pairs in P x P not recorded as productive are null
     *implicitly* — no per-pair storage. P starts as the initially live
     cells (when there are at most [auto_init_probe] of them) and grows
     by probing each cell the moment it first becomes live, against all
     of P. Crucially, cells that are merely *discovered* (as transition
     outcomes) but never live are never probed — this is what kept the
     old engine's eager closure quadratic in the discovered state count
     and is the reason counter-carrying protocols exploded there.
     While every live cell is in P the engine is *drained*: silence is
     the O(1) observation "no productive pair carries weight".

   - a *pair cache* ({!Paircache}) of individually probed pairs, used
     once P stops growing (too many cells, or too many productive pairs
     to keep probing eagerly — the engine then drops to *lazy* mode,
     permanently). Pairs are probed when the scheduler actually draws
     them; null outcomes are cached under a budget, productive outcomes
     always.

   == Exact skipping ==

   Let T_ab = n_a (n_b - [a=b]) be the ordered agent-pair mass of class
   pair (a, b), q_ab = mix_ab / 2E the scheduler's class-pair law, and
   K_ab the mass of pairs currently *known null*:

     K_ab = ps_a ps_b - [a=b] ps_a - wp_ab + kn_ab

   (ps = probed live mass per class, wp = productive mass with both ends
   in P, kn = explicitly cached null mass; the three terms are the
   implicit-null mass of P x P plus the explicit nulls). Skipping the
   interactions that land in the known-null set is exact for *any* such
   set: the scheduler is i.i.d. per tick, so ticks are split by a fixed
   thinning into "guaranteed null" (probability 1 - p where
   p = sum_ab q_ab (T_ab - K_ab)/T_ab) and "possibly interesting"; the
   count of skipped ticks before the next interesting one is geometric
   in p, sampled exactly like the old engine's W/(n(n-1)) skip — which
   is the special case where everything is probed and K = T - W.

   A hit is then drawn from the complement of the known-null set,
   weighted by pair mass: with avail = W + U (W productive mass, U
   unknown mass), an integer target below W selects a productive pair by
   the usual weighted scan; otherwise a pair with at least one endpoint
   outside P is drawn by Fenwick descent over the probed/unprobed class
   masses and rejected while already known — the remaining law is
   uniform over unknown pairs, as required. An unknown pair is probed on
   the spot: a productive outcome is applied as the event; a null
   outcome *is* the consumed interaction (no event) and is cached so the
   skip gets stronger. In drained mode U = 0 and the selection
   degenerates to the old engine's scan.

   == Silence ==

   The configuration is provably silent iff K_ab = T_ab for every
   scheduled class pair. In drained mode this is exactly W = 0 (the old
   oracle); in lazy mode it can still become provable when the live mass
   returns into P with no productive pair left (e.g. after recovery from
   a fault that interned new states) — and when it is not provable the
   oracle answers "unknown" rather than guessing, so measurement layers
   fall back to their confirmation windows. *)

(* Cells are packed two-per-int for pair keys; 2^25 cells bound the
   closure (a full table at that size would be astronomically beyond the
   cache budget anyway). *)
let cell_bits = 25
let cell_limit = 1 lsl cell_bits

(* Auto-drain threshold: probe the initial live cells eagerly when there
   are at most this many (the historical engine behavior, and what keeps
   the exact oracle for every small-closure run). 4096 covers the scale
   experiments' worst cases. *)
let auto_init_probe = 4096

(* P stops growing past this many cells, or this many productive pairs;
   the engine then runs lazily forever. The pair cap is the density
   guard: a protocol whose cells almost all interact productively (e.g.
   Optimal-silent's counter states, where ~every ordered pair propagates
   a max) makes both the fold probes and the per-event adjacency walks
   quadratic in P, so the engine must bail out to lazy probing while P
   is still small. Sparse protocols (Silent-n-state's diagonal, the
   epidemic) never approach it and keep the exact drained oracle. *)
let probe_cell_cap = 8192
let padj_cap = 1 lsl 16

(* Growable int vector (adjacency arrays, probe order, class cells). *)
type veci = { mutable buf : int array; mutable len : int }

let veci_make () = { buf = Array.make 8 0; len = 0 }

let veci_push v x =
  if v.len = Array.length v.buf then begin
    let b = Array.make (2 * v.len) 0 in
    Array.blit v.buf 0 b 0 v.len;
    v.buf <- b
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

type 'a t = {
  protocol : 'a Protocol.t;
  rng : Prng.t;
  n : int;
  (* degree classes *)
  nc : int;
  class_sizes : int array;
  class_of_agent : int array;
  members : int array array;
  rank_in_class : int array;
  qmix : float array;  (* nc*nc row-major: mix_ab / 2E *)
  tmass : int array;  (* nc*nc: n_a (n_b - [a=b]) *)
  lumping_exact : bool;
  (* cells *)
  mutable states : 'a array;
  mutable cls : int array;
  mutable counts : int array;
  mutable slot : int array;  (* slot within fenp/fenx of the cell's class *)
  mutable in_p : bool array;  (* member of the probed set *)
  mutable d : int;
  buckets : (int, int list) Hashtbl.t;  (* Hashtbl.hash state -> cells *)
  (* per-class agent mass, split probed/unprobed for restricted draws *)
  fenp : Fenwick.t array;
  fenx : Fenwick.t array;
  cell_of_slot_p : veci array;  (* class -> slot -> cell *)
  cell_of_slot_x : veci array;
  (* pair knowledge *)
  cache : Paircache.t;
  probe_order : veci;  (* cells of P, insertion order *)
  mutable drained : bool;
  (* productive adjacency: per-cell lists for incremental mass updates,
     per-class-pair packed pair vectors for the selection scan *)
  mutable p_out : int list array;
  mutable p_in : int list array;
  plist : veci array;  (* nc*nc *)
  mutable productive_pairs : int;
  wp : int array;  (* nc*nc: productive mass, both endpoints in P *)
  wx : int array;  (* nc*nc: productive mass, not both in P *)
  (* explicit null adjacency (lazy probes only) *)
  mutable n_out : int list array;
  mutable n_in : int list array;
  kn : int array;  (* nc*nc: explicitly cached null mass *)
  (* counters *)
  mutable live_cells : int;
  mutable interactions : int;
  mutable events : int;
  mutable pairs_probed : int;
  monitor : 'a Monitor.t;
}

let protocol t = t.protocol

let n t = t.n

let interactions t = t.interactions

let parallel_time t = float_of_int t.interactions /. float_of_int t.n

let events t = t.events

let leader_count t = Monitor.leader_count t.monitor

let leader_correct t = Monitor.leader_correct t.monitor

let ranking_correct t = Monitor.ranking_correct t.monitor

let ranked_agents t = Monitor.ranked_agents t.monitor

let monitor_updates t = Monitor.updates t.monitor

let closure_size t = t.d

let pairs_probed t = t.pairs_probed

let pairs_cached t = Paircache.size t.cache

let classes_live t = t.live_cells

let productive_pairs t = t.productive_pairs

let drained t = t.drained

let lumping_exact t = t.lumping_exact

let null_skipped t = t.interactions - t.events

let pair_key i j = (i lsl cell_bits) lor j

let pack_outcome i j = (i lsl cell_bits) lor j

let outcome_fst v = v lsr cell_bits

let outcome_snd v = v land (cell_limit - 1)

let null_outcome = -1

let idx t a b = (a * t.nc) + b

(* probed live mass of class a *)
let ps t a = Fenwick.total t.fenp.(a)

(* unprobed live mass of class a *)
let xs t a = Fenwick.total t.fenx.(a)

(* mass of ordered pairs currently known to be null in class pair (a,b) *)
let known_null t a b =
  let p_a = ps t a and p_b = ps t b in
  let self = if a = b then p_a else 0 in
  (p_a * p_b) - self - t.wp.(idx t a b) + t.kn.(idx t a b)

(* mass of pairs that could still do something: productive + unknown *)
let avail t a b = t.tmass.(idx t a b) - known_null t a b

let productive_weight t =
  let acc = ref 0 in
  for a = 0 to t.nc - 1 do
    for b = 0 to t.nc - 1 do
      if t.qmix.(idx t a b) > 0.0 then acc := !acc + avail t a b
    done
  done;
  !acc

let is_silent t = productive_weight t = 0

let silent t = if is_silent t then Some true else if t.drained then Some false else None

(* ---------- cells ---------- *)

let grow t =
  let cap = Array.length t.states in
  if t.d = cap then begin
    let new_cap = max 16 (2 * cap) in
    let states = Array.make new_cap t.states.(0) in
    Array.blit t.states 0 states 0 t.d;
    let copy_int a = let b = Array.make new_cap 0 in Array.blit a 0 b 0 t.d; b in
    let copy_bool a = let b = Array.make new_cap false in Array.blit a 0 b 0 t.d; b in
    let copy_list a = let b = Array.make new_cap [] in Array.blit a 0 b 0 t.d; b in
    t.states <- states;
    t.cls <- copy_int t.cls;
    t.counts <- copy_int t.counts;
    t.slot <- copy_int t.slot;
    t.in_p <- copy_bool t.in_p;
    t.p_out <- copy_list t.p_out;
    t.p_in <- copy_list t.p_in;
    t.n_out <- copy_list t.n_out;
    t.n_in <- copy_list t.n_in
  end

(* Interning is bucketed by the polymorphic hash: the engine requires
   that the protocol's [equal] coincides with structural equality (true
   for the plain-data states of the deterministic protocols it targets).
   The hash only routes equality lookups — nothing ever iterates the
   buckets, so results cannot depend on hash values. *)
let intern t state cls_id =
  let equal = t.protocol.Protocol.equal in
  let h = Hashtbl.hash state in
  let bucket = match Hashtbl.find_opt t.buckets h with Some b -> b | None -> [] in
  match
    List.find_opt (fun i -> t.cls.(i) = cls_id && equal t.states.(i) state) bucket
  with
  | Some i -> i
  | None ->
      if t.d >= cell_limit then
        invalid_arg "Count_sim: cell space exhausted (2^25 interned (state, class) cells)";
      grow t;
      let i = t.d in
      t.states.(i) <- state;
      t.cls.(i) <- cls_id;
      t.counts.(i) <- 0;
      t.in_p.(i) <- false;
      (* new cells start on the unprobed side *)
      t.slot.(i) <- Fenwick.length t.fenx.(cls_id);
      Fenwick.append t.fenx.(cls_id);
      veci_push t.cell_of_slot_x.(cls_id) i;
      t.p_out.(i) <- [];
      t.p_in.(i) <- [];
      t.n_out.(i) <- [];
      t.n_in.(i) <- [];
      t.d <- t.d + 1;
      Hashtbl.replace t.buckets h (i :: bucket);
      i

(* Directed mass of pair (i, j) under current counts. *)
let pair_weight t i j =
  if i = j then t.counts.(i) * (t.counts.(i) - 1) else t.counts.(i) * t.counts.(j)

(* Both-endpoints-probed is stable per pair: P only grows while drained,
   and in drained mode every probed pair has both endpoints in P; lazy
   probes only happen after P is frozen. So evaluating it at walk time
   always matches the insert-time classification. *)
let pair_in_p t i j = t.in_p.(i) && t.in_p.(j)

(* Add [sign] times the current mass of every known pair touching [k]
   into the class-pair accumulators. O(degree of k). *)
let accumulate_contribution t k sign =
  let touch_productive i j =
    let w = pair_weight t i j in
    if w <> 0 then begin
      let cp = idx t t.cls.(i) t.cls.(j) in
      if pair_in_p t i j then t.wp.(cp) <- t.wp.(cp) + (sign * w)
      else t.wx.(cp) <- t.wx.(cp) + (sign * w)
    end
  in
  let touch_null i j =
    let w = pair_weight t i j in
    if w <> 0 then begin
      let cp = idx t t.cls.(i) t.cls.(j) in
      t.kn.(cp) <- t.kn.(cp) + (sign * w)
    end
  in
  List.iter (fun j -> touch_productive k j) t.p_out.(k);
  List.iter (fun i -> touch_productive i k) t.p_in.(k);
  List.iter (fun j -> touch_null k j) t.n_out.(k);
  List.iter (fun i -> touch_null i k) t.n_in.(k)

(* Probe one ordered pair, record the outcome, and account its mass.
   The pair must be unknown. Returns the productive outcome, if any. *)
let probe t i j =
  t.pairs_probed <- t.pairs_probed + 1;
  let si = t.states.(i) and sj = t.states.(j) in
  let si', sj' = t.protocol.Protocol.transition t.rng si sj in
  let equal = t.protocol.Protocol.equal in
  if equal si si' && equal sj sj' then begin
    (* Null. Within P it is implicit; otherwise cache it explicitly
       (budget permitting) so its mass strengthens the skip. *)
    if not (pair_in_p t i j) then begin
      if Paircache.add_null t.cache (pair_key i j) null_outcome then begin
        t.n_out.(i) <- j :: t.n_out.(i);
        if i <> j then t.n_in.(j) <- i :: t.n_in.(j);
        let cp = idx t t.cls.(i) t.cls.(j) in
        t.kn.(cp) <- t.kn.(cp) + pair_weight t i j
      end
    end;
    None
  end
  else begin
    let i' = intern t si' t.cls.(i) and j' = intern t sj' t.cls.(j) in
    Paircache.add t.cache (pair_key i j) (pack_outcome i' j');
    t.p_out.(i) <- j :: t.p_out.(i);
    if i <> j then t.p_in.(j) <- i :: t.p_in.(j);
    veci_push t.plist.(idx t t.cls.(i) t.cls.(j)) (pair_key i j);
    t.productive_pairs <- t.productive_pairs + 1;
    let cp = idx t t.cls.(i) t.cls.(j) in
    let w = pair_weight t i j in
    if pair_in_p t i j then t.wp.(cp) <- t.wp.(cp) + w else t.wx.(cp) <- t.wx.(cp) + w;
    Some (i', j')
  end

(* Move a cell to the probed side: its agent mass migrates from fenx to
   fenp (the fenx slot stays as a permanent zero — P never shrinks). *)
let mark_probed t k =
  Fenwick.add t.fenx.(t.cls.(k)) t.slot.(k) (-t.counts.(k));
  t.in_p.(k) <- true;
  t.slot.(k) <- Fenwick.length t.fenp.(t.cls.(k));
  Fenwick.append t.fenp.(t.cls.(k));
  Fenwick.add t.fenp.(t.cls.(k)) t.slot.(k) t.counts.(k);
  veci_push t.cell_of_slot_p.(t.cls.(k)) k;
  veci_push t.probe_order k

(* A cell just became live. While drained, fold it into P by probing it
   against all of P (both orders, including itself) — unless P or the
   productive adjacency would outgrow its cap, in which case the engine
   goes lazy, permanently. *)
let on_liveness_gain t k =
  if t.drained && not t.in_p.(k) then begin
    if t.probe_order.len >= probe_cell_cap || t.productive_pairs >= padj_cap then
      t.drained <- false
    else begin
      mark_probed t k;
      ignore (probe t k k);
      for q_idx = 0 to t.probe_order.len - 2 do
        let q = t.probe_order.buf.(q_idx) in
        ignore (probe t k q);
        ignore (probe t q k)
      done
    end
  end

let change_count t k delta =
  accumulate_contribution t k (-1);
  let was = t.counts.(k) in
  t.counts.(k) <- was + delta;
  accumulate_contribution t k 1;
  let f = if t.in_p.(k) then t.fenp else t.fenx in
  Fenwick.add f.(t.cls.(k)) t.slot.(k) delta;
  if delta > 0 then
    for _ = 1 to delta do Monitor.add t.monitor t.states.(k) done
  else
    for _ = 1 to -delta do Monitor.remove t.monitor t.states.(k) done;
  if was = 0 && delta > 0 then begin
    t.live_cells <- t.live_cells + 1;
    on_liveness_gain t k
  end
  else if was > 0 && was + delta = 0 then t.live_cells <- t.live_cells - 1

let make ?classes ?init_probe ~protocol ~init ~rng () =
  if not protocol.Protocol.deterministic then
    invalid_arg "Count_sim.make: protocol is randomized";
  if Array.length init <> protocol.Protocol.n then
    invalid_arg "Count_sim.make: initial configuration size differs from protocol.n";
  Protocol.validate ~config:init protocol;
  let n = protocol.Protocol.n in
  let classes =
    match classes with Some c -> c | None -> Topology.complete_classes ~n
  in
  if classes.Topology.agents <> n then
    invalid_arg "Count_sim.make: degree classes cover a different population";
  let nc = classes.Topology.nc in
  let rank_in_class = Array.make n 0 in
  Array.iter
    (fun mem -> Array.iteri (fun pos agent -> rank_in_class.(agent) <- pos) mem)
    classes.Topology.members;
  let total_mix =
    Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 classes.Topology.mix
  in
  if total_mix = 0 then invalid_arg "Count_sim.make: topology has no edges";
  let qmix = Array.make (nc * nc) 0.0 in
  let tmass = Array.make (nc * nc) 0 in
  for a = 0 to nc - 1 do
    for b = 0 to nc - 1 do
      let na = classes.Topology.sizes.(a) and nb = classes.Topology.sizes.(b) in
      qmix.((a * nc) + b) <-
        float_of_int classes.Topology.mix.(a).(b) /. float_of_int total_mix;
      tmass.((a * nc) + b) <- na * (nb - if a = b then 1 else 0)
    done
  done;
  let t =
    {
      protocol;
      rng;
      n;
      nc;
      class_sizes = classes.Topology.sizes;
      class_of_agent = classes.Topology.class_of;
      members = classes.Topology.members;
      rank_in_class;
      qmix;
      tmass;
      lumping_exact = classes.Topology.exact;
      states = Array.make 16 init.(0);
      cls = Array.make 16 0;
      counts = Array.make 16 0;
      slot = Array.make 16 0;
      in_p = Array.make 16 false;
      d = 0;
      buckets = Hashtbl.create 1024;
      fenp = Array.init nc (fun _ -> Fenwick.create ());
      fenx = Array.init nc (fun _ -> Fenwick.create ());
      cell_of_slot_p = Array.init nc (fun _ -> veci_make ());
      cell_of_slot_x = Array.init nc (fun _ -> veci_make ());
      cache = Paircache.create ();
      probe_order = veci_make ();
      drained = false;
      p_out = Array.make 16 [];
      p_in = Array.make 16 [];
      plist = Array.init (nc * nc) (fun _ -> veci_make ());
      productive_pairs = 0;
      wp = Array.make (nc * nc) 0;
      wx = Array.make (nc * nc) 0;
      n_out = Array.make 16 [];
      n_in = Array.make 16 [];
      kn = Array.make (nc * nc) 0;
      live_cells = 0;
      interactions = 0;
      events = 0;
      pairs_probed = 0;
      monitor = Monitor.create protocol [||];
    }
  in
  Array.iteri
    (fun agent s ->
      let k = intern t s t.class_of_agent.(agent) in
      change_count t k 1)
    init;
  let eager =
    match init_probe with Some b -> b | None -> t.live_cells <= auto_init_probe
  in
  if eager then begin
    (* Drain the initial configuration by admitting the live cells into P
       one at a time, exactly as later liveness gains do (outcome cells
       are interned yet not probed until they actually become live). Each
       admission re-checks the caps, so a protocol too dense to drain
       demotes to lazy mid-sweep with the P-pairs-all-probed invariant
       intact — the cells never admitted simply stay on the unprobed
       side. *)
    t.drained <- true;
    for k = 0 to t.d - 1 do
      if t.counts.(k) > 0 then on_liveness_gain t k
    done
  end;
  t

(* ---------- event execution ---------- *)

let apply_event t i j i' j' =
  change_count t i (-1);
  change_count t j (-1);
  change_count t i' 1;
  change_count t j' 1;
  t.events <- t.events + 1

(* Probability that one scheduler tick is *not* known-null. *)
let hit_prob t =
  if t.nc = 1 then float_of_int (avail t 0 0) /. float_of_int t.tmass.(0)
  else begin
    let acc = ref 0.0 in
    for a = 0 to t.nc - 1 do
      for b = 0 to t.nc - 1 do
        let q = t.qmix.(idx t a b) in
        if q > 0.0 then
          acc := !acc +. (q *. float_of_int (avail t a b) /. float_of_int t.tmass.(idx t a b))
      done
    done;
    !acc
  end

(* Null interactions before the next possibly-interesting one: geometric
   with success probability [hit_prob]. Same sampling as the historical
   W/(n(n-1)) skip, of which this is the generalization. *)
let sample_skip t =
  let p = hit_prob t in
  if p >= 1.0 then 0
  else begin
    let u = Prng.float t.rng in
    int_of_float (Float.floor (log1p (-.u) /. log1p (-.p)))
  end

(* The class pair the hit lands in, proportional to q_ab·avail_ab/T_ab. *)
let select_class_pair t =
  if t.nc = 1 then (0, 0)
  else begin
    let weight a b =
      let q = t.qmix.(idx t a b) in
      if q <= 0.0 then 0.0
      else q *. float_of_int (avail t a b) /. float_of_int t.tmass.(idx t a b)
    in
    let total = ref 0.0 in
    for a = 0 to t.nc - 1 do
      for b = 0 to t.nc - 1 do
        total := !total +. weight a b
      done
    done;
    let target = Prng.float t.rng *. !total in
    let acc = ref 0.0 in
    let chosen = ref None in
    (try
       for a = 0 to t.nc - 1 do
         for b = 0 to t.nc - 1 do
           let w = weight a b in
           if w > 0.0 then begin
             acc := !acc +. w;
             if !acc > target then begin
               chosen := Some (a, b);
               raise Exit
             end
           end
         done
       done
     with Exit -> ());
    match !chosen with
    | Some ab -> ab
    | None ->
        (* float rounding pushed the target past the sum: take the last
           positive-weight pair *)
        let last = ref (0, 0) in
        for a = 0 to t.nc - 1 do
          for b = 0 to t.nc - 1 do
            if weight a b > 0.0 then last := (a, b)
          done
        done;
        !last
  end

(* Weighted scan over the recorded productive pairs of a class pair:
   integer [target] uniform below their total mass selects a pair
   proportionally to c_i (c_j - [i=j]). *)
let select_productive t a b target =
  let v = t.plist.(idx t a b) in
  let acc = ref 0 in
  let found = ref (-1) in
  (try
     for u = 0 to v.len - 1 do
       let key = v.buf.(u) in
       let i = outcome_fst key and j = outcome_snd key in
       let w = pair_weight t i j in
       if w > 0 then begin
         acc := !acc + w;
         if !acc > target then begin
           found := key;
           raise Exit
         end
       end
     done
   with Exit -> ());
  if !found < 0 then invalid_arg "Count_sim: productive mass accounting broke";
  (outcome_fst !found, outcome_snd !found)

(* Draw a uniform agent of class [a], excluding (when [skip_cell] is a
   real cell) one agent that is currently subtracted from its tree.
   Returns the agent's cell. *)
let draw_cell t a =
  let p_mass = ps t a and x_mass = xs t a in
  let target = Prng.int t.rng (p_mass + x_mass) in
  if target < p_mass then t.cell_of_slot_p.(a).buf.(Fenwick.find t.fenp.(a) target)
  else t.cell_of_slot_x.(a).buf.(Fenwick.find t.fenx.(a) (target - p_mass))

let draw_cell_unprobed t a =
  t.cell_of_slot_x.(a).buf.(Fenwick.find t.fenx.(a) (Prng.int t.rng (xs t a)))

let draw_cell_probed t a =
  t.cell_of_slot_p.(a).buf.(Fenwick.find t.fenp.(a) (Prng.int t.rng (ps t a)))

let fen_of t k = if t.in_p.(k) then t.fenp.(t.cls.(k)) else t.fenx.(t.cls.(k))

(* Draw a uniform ordered agent pair among those with at least one
   endpoint outside P in class pair (a, b); reject while the drawn cell
   pair is already cached (explicitly null or productive); probe the
   first unknown pair. Every draw is mass-weighted through the Fenwick
   trees, so each *agent* pair of the set is equally likely, which makes
   the accepted pair uniform over the unknown mass — the law the skip
   conditioned on. Termination: the unknown mass is positive (the caller
   checked avail > W), and each round hits it with probability at least
   unknown/(m1 + m2). *)
let rec draw_unknown_and_resolve t a b =
  let x_a = xs t a and x_b = xs t b in
  let m1 = x_a * (t.class_sizes.(b) - if a = b then 1 else 0) in
  let m2 = ps t a * x_b in
  let target = Prng.int t.rng (m1 + m2) in
  let i, j =
    if target < m1 then begin
      let i = draw_cell_unprobed t a in
      (* second endpoint: any agent of b except the drawn one *)
      let fi = fen_of t i in
      Fenwick.add fi t.slot.(i) (-1);
      let j = draw_cell t b in
      Fenwick.add fi t.slot.(i) 1;
      (i, j)
    end
    else begin
      let i = draw_cell_probed t a in
      (* second endpoint: unprobed, so never the same agent *)
      let j = draw_cell_unprobed t b in
      (i, j)
    end
  in
  let v = Paircache.find t.cache (pair_key i j) in
  if v <> Paircache.absent then
    (* already known (explicit null or productive): not an unknown pair *)
    draw_unknown_and_resolve t a b
  else begin
    match probe t i j with
    | Some (i', j') -> apply_event t i j i' j'
    | None -> ()  (* the consumed interaction was null; no event *)
  end

(* Execute the hit the skip stopped at: a productive pair with
   probability W/avail (served from the recorded adjacency, possibly
   through the cache), otherwise a uniformly random unknown pair, probed
   on the spot. *)
let hit t =
  let a, b = select_class_pair t in
  let cp = idx t a b in
  let w = t.wp.(cp) + t.wx.(cp) in
  let av = avail t a b in
  let target = Prng.int t.rng av in
  if target < w then begin
    let i, j = select_productive t a b target in
    match Paircache.find t.cache (pair_key i j) with
    | v when v <> Paircache.absent && v <> null_outcome ->
        apply_event t i j (outcome_fst v) (outcome_snd v)
    | _ -> invalid_arg "Count_sim: productive pair missing from cache"
  end
  else draw_unknown_and_resolve t a b

let step_event t =
  if not (is_silent t) then begin
    let skip = sample_skip t in
    t.interactions <- t.interactions + skip + 1;
    hit t
  end

let advance t ~until =
  if is_silent t then begin
    (* Every remaining interaction is null: fast-forward the clock. *)
    if t.interactions < until then t.interactions <- until;
    false
  end
  else begin
    let skip = sample_skip t in
    let next = t.interactions + skip + 1 in
    if next > until then
      (* The sampled hit lands beyond [until]. Stop the clock there and
         discard the sample: the geometric skip is memoryless, so
         resampling from [until] later is distributed identically. *)
      t.interactions <- until
    else begin
      t.interactions <- next;
      hit t
    end;
    true
  end

(* ---------- configuration access and fault injection ----------

   Agent identities are a view over the multiset: agent [i] belongs to
   its topology degree class, and holds the [r]-th state of that class's
   configuration enumerated in cell-interning order, where [r] is [i]'s
   rank among the class members (the same order [snapshot] uses). Under
   the class-uniform scheduler agents of one class are exchangeable, so
   this fixed enumeration gives [inject] and [corrupt] the same
   distributional semantics as on the agent engine. *)

let cells_in_order t a f =
  let vp = t.cell_of_slot_p.(a) and vx = t.cell_of_slot_x.(a) in
  for u = 0 to vp.len - 1 do f vp.buf.(u) done;
  (* cells that migrated into P stay in the x-list as zero-weight
     orphans: skip them, they were enumerated above *)
  for u = 0 to vx.len - 1 do
    let k = vx.buf.(u) in
    if not t.in_p.(k) then f k
  done

let owner_of_agent t i =
  if i < 0 || i >= t.n then invalid_arg "Count_sim: agent index out of range";
  let a = t.class_of_agent.(i) in
  let r = t.rank_in_class.(i) in
  let acc = ref 0 in
  let result = ref (-1) in
  (try
     cells_in_order t a (fun k ->
         acc := !acc + t.counts.(k);
         if !acc > r && !result < 0 then begin
           result := k;
           raise Exit
         end)
   with Exit -> ());
  if !result < 0 then invalid_arg "Count_sim: count accounting broke";
  !result

let state t i = t.states.(owner_of_agent t i)

let snapshot t =
  let out = Array.make t.n t.states.(0) in
  for a = 0 to t.nc - 1 do
    let mem = t.members.(a) in
    let pos = ref 0 in
    cells_in_order t a (fun k ->
        for _ = 1 to t.counts.(k) do
          out.(mem.(!pos)) <- t.states.(k);
          incr pos
        done)
  done;
  out

let replace t ~old_cell ~new_state ~cls_id =
  let k_new = intern t new_state cls_id in
  change_count t old_cell (-1);
  change_count t k_new 1

let inject t i s =
  let a = t.class_of_agent.(i) in
  let k_old = owner_of_agent t i in
  replace t ~old_cell:k_old ~new_state:s ~cls_id:a

let corrupt t ~rng ~fraction gen =
  if not (fraction >= 0.0 && fraction <= 1.0) then
    invalid_arg "Count_sim.corrupt: fraction outside [0,1]";
  let count =
    if fraction = 0.0 then 0
    else max 1 (int_of_float (Float.round (fraction *. float_of_int t.n)))
  in
  let victims = Prng.permutation rng t.n in
  (* resolve all victims against the pre-corruption configuration: the
     indices are distinct, so each removal is backed by the old multiset *)
  let before = snapshot t in
  for k = 0 to count - 1 do
    let agent = victims.(k) in
    let a = t.class_of_agent.(agent) in
    let old_cell = intern t before.(agent) a in
    replace t ~old_cell ~new_state:(gen rng) ~cls_id:a
  done;
  count

let distinct_states t =
  if t.nc = 1 then begin
    let acc = ref [] in
    for i = t.d - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (t.states.(i), t.counts.(i)) :: !acc
    done;
    !acc
  end
  else begin
    (* cells of one state may exist in several classes: merge by state *)
    let equal = t.protocol.Protocol.equal in
    let acc = ref [] in
    for i = t.d - 1 downto 0 do
      if t.counts.(i) > 0 then begin
        let rec bump = function
          | [] -> [ (t.states.(i), t.counts.(i)) ]
          | (s, c) :: rest ->
              if equal s t.states.(i) then (s, c + t.counts.(i)) :: rest
              else (s, c) :: bump rest
        in
        acc := bump !acc
      end
    done;
    !acc
  end

type outcome = {
  silent : bool;
  correct : bool;
  stabilization_time : float;
  events : int;
  interactions : int;
}

let run_to_silence ?max_events t =
  let max_events = match max_events with Some m -> m | None -> 100 * t.n * t.n in
  let budget = ref max_events in
  while (not (is_silent t)) && !budget > 0 do
    step_event t;
    decr budget
  done;
  {
    silent = is_silent t;
    correct = ranking_correct t;
    stabilization_time = parallel_time t;
    events = t.events;
    interactions = t.interactions;
  }
