type event =
  | Step of { interactions : int; time : float }
  | Correct_entered of { interactions : int; time : float }
  | Correct_lost of { interactions : int; time : float }
  | Silence of { interactions : int; time : float }
  | Fault of { agents : int; interactions : int; time : float }

let interactions = function
  | Step { interactions; _ }
  | Correct_entered { interactions; _ }
  | Correct_lost { interactions; _ }
  | Silence { interactions; _ }
  | Fault { interactions; _ } ->
      interactions

let time = function
  | Step { time; _ }
  | Correct_entered { time; _ }
  | Correct_lost { time; _ }
  | Silence { time; _ }
  | Fault { time; _ } ->
      time

let label = function
  | Step _ -> "step"
  | Correct_entered _ -> "correct_entered"
  | Correct_lost _ -> "correct_lost"
  | Silence _ -> "silence"
  | Fault _ -> "fault"

let pp fmt = function
  | Step { interactions; time } -> Format.fprintf fmt "step@%d (t=%.2f)" interactions time
  | Correct_entered { interactions; time } ->
      Format.fprintf fmt "correct-entered@%d (t=%.2f)" interactions time
  | Correct_lost { interactions; time } ->
      Format.fprintf fmt "correct-lost@%d (t=%.2f)" interactions time
  | Silence { interactions; time } -> Format.fprintf fmt "silence@%d (t=%.2f)" interactions time
  | Fault { agents; interactions; time } ->
      Format.fprintf fmt "fault(%d agents)@%d (t=%.2f)" agents interactions time

type 'b collector = {
  interval : int;
  mutable next_at : int;
  mutable samples : (float * 'b) list;  (* reversed *)
}

let collector ~interval () =
  if interval <= 0 then invalid_arg "Instrument.collector: interval must be positive";
  { interval; next_at = 0; samples = [] }

let record c ~time value = c.samples <- (time, value) :: c.samples

let sampled c metric event =
  match event with
  | Step { interactions; time } ->
      if interactions >= c.next_at then begin
        record c ~time (metric ());
        c.next_at <- interactions + c.interval
      end
  | Fault { time; _ } ->
      (* faults are always worth a sample: they bound recovery timelines *)
      record c ~time (metric ())
  | Correct_entered _ | Correct_lost _ | Silence _ -> ()

let series c = List.rev c.samples
