type t = {
  name : string;
  n : int;
  edges : (int * int) array;  (* undirected, i < j, no duplicates *)
  adjacency : int list array;
}

let build ~name ~n edges =
  let adjacency = Array.make n [] in
  Array.iter
    (fun (i, j) ->
      adjacency.(i) <- j :: adjacency.(i);
      adjacency.(j) <- i :: adjacency.(j))
    edges;
  { name; n; edges; adjacency }

let complete ~n =
  if n < 2 then invalid_arg "Topology.complete: n must be >= 2";
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  build ~name:"complete" ~n (Array.of_list !edges)

let ring ~n =
  if n < 3 then invalid_arg "Topology.ring: n must be >= 3";
  let edges = Array.init n (fun i -> (min i ((i + 1) mod n), max i ((i + 1) mod n))) in
  build ~name:"ring" ~n edges

let star ~n =
  if n < 2 then invalid_arg "Topology.star: n must be >= 2";
  build ~name:"star" ~n (Array.init (n - 1) (fun i -> (0, i + 1)))

let random_regular rng ~n ~degree =
  if degree < 2 || degree mod 2 <> 0 then
    invalid_arg "Topology.random_regular: degree must be even and >= 2";
  if n < degree + 1 then invalid_arg "Topology.random_regular: n must exceed the degree";
  let canonical i j = (min i j, max i j) in
  let rec attempt tries =
    if tries = 0 then failwith "Topology.random_regular: could not build a simple graph";
    let seen = Hashtbl.create (n * degree) in
    let edges = ref [] in
    let ok = ref true in
    for _ = 1 to degree / 2 do
      let cycle = Prng.permutation rng n in
      for k = 0 to n - 1 do
        let e = canonical cycle.(k) cycle.((k + 1) mod n) in
        if fst e = snd e || Hashtbl.mem seen e then ok := false
        else begin
          Hashtbl.replace seen e ();
          edges := e :: !edges
        end
      done
    done;
    if !ok then build ~name:(Printf.sprintf "random-%d-regular" degree) ~n (Array.of_list !edges)
    else attempt (tries - 1)
  in
  attempt 1000

let size t = t.n

let edge_count t = Array.length t.edges

let degree t i = List.length t.adjacency.(i)

let is_connected t =
  let visited = Array.make t.n false in
  let rec walk i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter walk t.adjacency.(i)
    end
  in
  walk 0;
  Array.for_all Fun.id visited

let sampler t rng =
  let i, j = t.edges.(Prng.int rng (Array.length t.edges)) in
  if Prng.bool rng then (i, j) else (j, i)

let name t = t.name

(* Degree-class lumping: agents grouped by degree, with the ordered
   class-pair mixing counts the count engine needs to reproduce the
   uniform-edge scheduler at the class level. Lumping is exact exactly
   when every class-pair subgraph is empty or complete: then, conditioned
   on the scheduler hitting class pair (a, b), the ordered agent pair is
   uniform over a × b, which is the law the count engine samples. *)

type classes = {
  graph : string;
  agents : int;
  nc : int;
  class_of : int array;
  sizes : int array;
  members : int array array;  (* class -> member agents, ascending *)
  mix : int array array;  (* ordered: mix.(a).(b) adjacent (i∈a, j∈b) pairs *)
  exact : bool;
}

let complete_classes ~n =
  if n < 2 then invalid_arg "Topology.complete_classes: n must be >= 2";
  {
    graph = "complete";
    agents = n;
    nc = 1;
    class_of = Array.make n 0;
    sizes = [| n |];
    members = [| Array.init n Fun.id |];
    mix = [| [| n * (n - 1) |] |];
    exact = true;
  }

let degree_classes t =
  let n = t.n in
  (* class ids in increasing order of degree; degrees are <= n-1 *)
  let degree = Array.init n (degree t) in
  let seen = Array.make n (-1) in
  let nc = ref 0 in
  Array.iter
    (fun d ->
      if seen.(d) = -1 then begin
        seen.(d) <- !nc;
        incr nc
      end)
    degree;
  (* renumber so class ids follow ascending degree, independent of agent
     order *)
  let degs = ref [] in
  Array.iteri (fun d id -> if id >= 0 then degs := d :: !degs) seen;
  let degs = List.sort compare !degs in
  List.iteri (fun rank d -> seen.(d) <- rank) degs;
  let nc = !nc in
  let class_of = Array.map (fun d -> seen.(d)) degree in
  let sizes = Array.make nc 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) class_of;
  let members = Array.map (fun sz -> Array.make sz 0) sizes in
  let fill = Array.make nc 0 in
  Array.iteri
    (fun i c ->
      members.(c).(fill.(c)) <- i;
      fill.(c) <- fill.(c) + 1)
    class_of;
  let mix = Array.make_matrix nc nc 0 in
  Array.iter
    (fun (i, j) ->
      let a = class_of.(i) and b = class_of.(j) in
      mix.(a).(b) <- mix.(a).(b) + 1;
      mix.(b).(a) <- mix.(b).(a) + 1)
    t.edges;
  (* exactness: every class-pair subgraph empty or complete. mix.(a).(b)
     counts ordered adjacent pairs, so "complete" means sizes_a * sizes_b
     (a <> b) or sizes_a * (sizes_a - 1) (a = b, both orientations). *)
  let exact = ref true in
  for a = 0 to nc - 1 do
    for b = 0 to nc - 1 do
      let full = if a = b then sizes.(a) * (sizes.(a) - 1) else sizes.(a) * sizes.(b) in
      if mix.(a).(b) <> 0 && mix.(a).(b) <> full then exact := false
    done
  done;
  { graph = t.name; agents = n; nc; class_of; sizes; members; mix; exact = !exact }
