type t = {
  name : string;
  n : int;
  edges : (int * int) array;  (* undirected, i < j, no duplicates *)
  adjacency : int list array;
}

let build ~name ~n edges =
  let adjacency = Array.make n [] in
  Array.iter
    (fun (i, j) ->
      adjacency.(i) <- j :: adjacency.(i);
      adjacency.(j) <- i :: adjacency.(j))
    edges;
  { name; n; edges; adjacency }

let complete ~n =
  if n < 2 then invalid_arg "Topology.complete: n must be >= 2";
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  build ~name:"complete" ~n (Array.of_list !edges)

let ring ~n =
  if n < 3 then invalid_arg "Topology.ring: n must be >= 3";
  let edges = Array.init n (fun i -> (min i ((i + 1) mod n), max i ((i + 1) mod n))) in
  build ~name:"ring" ~n edges

let star ~n =
  if n < 2 then invalid_arg "Topology.star: n must be >= 2";
  build ~name:"star" ~n (Array.init (n - 1) (fun i -> (0, i + 1)))

let random_regular rng ~n ~degree =
  if degree < 2 || degree mod 2 <> 0 then
    invalid_arg "Topology.random_regular: degree must be even and >= 2";
  if n < degree + 1 then invalid_arg "Topology.random_regular: n must exceed the degree";
  let canonical i j = (min i j, max i j) in
  let rec attempt tries =
    if tries = 0 then failwith "Topology.random_regular: could not build a simple graph";
    let seen = Hashtbl.create (n * degree) in
    let edges = ref [] in
    let ok = ref true in
    for _ = 1 to degree / 2 do
      let cycle = Prng.permutation rng n in
      for k = 0 to n - 1 do
        let e = canonical cycle.(k) cycle.((k + 1) mod n) in
        if fst e = snd e || Hashtbl.mem seen e then ok := false
        else begin
          Hashtbl.replace seen e ();
          edges := e :: !edges
        end
      done
    done;
    if !ok then build ~name:(Printf.sprintf "random-%d-regular" degree) ~n (Array.of_list !edges)
    else attempt (tries - 1)
  in
  attempt 1000

let size t = t.n

let edge_count t = Array.length t.edges

let degree t i = List.length t.adjacency.(i)

let is_connected t =
  let visited = Array.make t.n false in
  let rec walk i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter walk t.adjacency.(i)
    end
  in
  walk 0;
  Array.for_all Fun.id visited

let sampler t rng =
  let i, j = t.edges.(Prng.int rng (Array.length t.edges)) in
  if Prng.bool rng then (i, j) else (j, i)

let name t = t.name
