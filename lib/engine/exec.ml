module type INSTANCE = sig
  type state

  val protocol : state Protocol.t
  val advance : until:int -> bool
  val interactions : unit -> int
  val events : unit -> int
  val parallel_time : unit -> float
  val ranking_correct : unit -> bool
  val leader_correct : unit -> bool
  val leader_count : unit -> int
  val ranked_agents : unit -> int
  val silent : unit -> bool option
  val state : int -> state
  val snapshot : unit -> state array
  val inject : int -> state -> unit
  val corrupt : rng:Prng.t -> fraction:float -> (Prng.t -> state) -> int
  val on : (Instrument.event -> unit) -> unit
  val emit : Instrument.event -> unit
  val stats : unit -> (string * float) list
end

type 'a t = (module INSTANCE with type state = 'a)

type kind = Agent | Count

let kind_to_string = function Agent -> "agent" | Count -> "count"

let of_sim (type a) (sim : a Sim.t) : a t =
  (module struct
    type state = a

    let protocol = Sim.protocol sim
    let handlers : (Instrument.event -> unit) list ref = ref []
    let on h = handlers := !handlers @ [ h ]
    let emit ev = List.iter (fun h -> h ev) !handlers

    let advance ~until:_ =
      Sim.step sim;
      (* [emit] on every interaction would make the agent engine's hot
         path allocate an event per step; skip entirely when nobody
         listens. *)
      if !handlers != [] then
        emit
          (Instrument.Step
             { interactions = Sim.interactions sim; time = Sim.parallel_time sim });
      true

    let interactions () = Sim.interactions sim
    let events () = Sim.interactions sim
    let parallel_time () = Sim.parallel_time sim
    let ranking_correct () = Sim.ranking_correct sim
    let leader_correct () = Sim.leader_correct sim
    let leader_count () = Sim.leader_count sim
    let ranked_agents () = Sim.ranked_agents sim
    let silent () = None
    let state i = Sim.state sim i
    let snapshot () = Sim.snapshot sim

    let inject i s =
      Sim.inject sim i s;
      emit
        (Instrument.Fault
           { agents = 1; interactions = Sim.interactions sim; time = Sim.parallel_time sim })

    let corrupt ~rng ~fraction gen =
      let agents = Sim.corrupt sim ~rng ~fraction gen in
      if agents > 0 then
        emit
          (Instrument.Fault
             { agents; interactions = Sim.interactions sim; time = Sim.parallel_time sim });
      agents

    let stats () =
      [
        ("interactions", float_of_int (Sim.interactions sim));
        ("events", float_of_int (Sim.interactions sim));
        ("monitor_updates", float_of_int (Sim.monitor_updates sim));
      ]
  end)

let of_count_sim (type a) (cs : a Count_sim.t) : a t =
  (module struct
    type state = a

    let protocol = Count_sim.protocol cs
    let handlers : (Instrument.event -> unit) list ref = ref []
    let on h = handlers := !handlers @ [ h ]
    let emit ev = List.iter (fun h -> h ev) !handlers

    (* [Silence] is announced once per silent stretch; a fault can wake
       the configuration and re-arm the announcement. *)
    let silence_announced = ref false

    let announce_silence () =
      if Count_sim.is_silent cs && not !silence_announced then begin
        silence_announced := true;
        emit
          (Instrument.Silence
             {
               interactions = Count_sim.interactions cs;
               time = Count_sim.parallel_time cs;
             })
      end

    let advance ~until =
      let before = Count_sim.events cs in
      let alive = Count_sim.advance cs ~until in
      if !handlers != [] then begin
        if Count_sim.events cs > before then
          emit
            (Instrument.Step
               {
                 interactions = Count_sim.interactions cs;
                 time = Count_sim.parallel_time cs;
               });
        announce_silence ()
      end;
      alive

    let interactions () = Count_sim.interactions cs
    let events () = Count_sim.events cs
    let parallel_time () = Count_sim.parallel_time cs
    let ranking_correct () = Count_sim.ranking_correct cs
    let leader_correct () = Count_sim.leader_correct cs
    let leader_count () = Count_sim.leader_count cs
    let ranked_agents () = Count_sim.ranked_agents cs
    let silent () = Count_sim.silent cs
    let state i = Count_sim.state cs i
    let snapshot () = Count_sim.snapshot cs

    let after_fault agents =
      if not (Count_sim.is_silent cs) then silence_announced := false;
      emit
        (Instrument.Fault
           {
             agents;
             interactions = Count_sim.interactions cs;
             time = Count_sim.parallel_time cs;
           })

    let inject i s =
      Count_sim.inject cs i s;
      after_fault 1

    let corrupt ~rng ~fraction gen =
      let agents = Count_sim.corrupt cs ~rng ~fraction gen in
      if agents > 0 then after_fault agents;
      agents

    let stats () =
      [
        ("interactions", float_of_int (Count_sim.interactions cs));
        ("events", float_of_int (Count_sim.events cs));
        ("null_skipped", float_of_int (Count_sim.null_skipped cs));
        ("closure_size", float_of_int (Count_sim.closure_size cs));
        ("pairs_probed", float_of_int (Count_sim.pairs_probed cs));
        ("pairs_cached", float_of_int (Count_sim.pairs_cached cs));
        ("classes_live", float_of_int (Count_sim.classes_live cs));
        ("productive_pairs", float_of_int (Count_sim.productive_pairs cs));
        ("productive_weight", float_of_int (Count_sim.productive_weight cs));
        ("monitor_updates", float_of_int (Count_sim.monitor_updates cs));
      ]
  end)

let make ?classes ~kind ~protocol ~init ~rng () =
  match kind with
  | Agent ->
      (* [classes] only parameterizes the count engine's lumping; the
         agent engine takes its topology through [Sim]'s sampler. *)
      of_sim (Sim.make ~protocol ~init ~rng)
  | Count -> of_count_sim (Count_sim.make ?classes ~protocol ~init ~rng ())

let protocol (type a) ((module E) : a t) = E.protocol
let n (type a) ((module E) : a t) = E.protocol.Protocol.n
let advance (type a) ((module E) : a t) ~until = E.advance ~until
let interactions (type a) ((module E) : a t) = E.interactions ()
let events (type a) ((module E) : a t) = E.events ()
let parallel_time (type a) ((module E) : a t) = E.parallel_time ()
let ranking_correct (type a) ((module E) : a t) = E.ranking_correct ()
let leader_correct (type a) ((module E) : a t) = E.leader_correct ()
let leader_count (type a) ((module E) : a t) = E.leader_count ()
let ranked_agents (type a) ((module E) : a t) = E.ranked_agents ()
let silent (type a) ((module E) : a t) = E.silent ()
let state (type a) ((module E) : a t) i = E.state i
let snapshot (type a) ((module E) : a t) = E.snapshot ()
let inject (type a) ((module E) : a t) i s = E.inject i s
let corrupt (type a) ((module E) : a t) ~rng ~fraction gen = E.corrupt ~rng ~fraction gen
let on (type a) ((module E) : a t) h = E.on h
let emit (type a) ((module E) : a t) ev = E.emit ev
let stats (type a) ((module E) : a t) = E.stats ()
