(** A steppable population-protocol simulation.

    [Sim] implements the paper's probabilistic scheduler: at every step a
    uniformly random ordered pair of distinct agents interacts. It exposes
    single-step control so that callers can interleave simulation with
    measurement, tracing or transient-fault injection (the self-stabilization
    setting: an adversary may corrupt states at any time; see
    [examples/sensor_recovery.ml]).

    Parallel time is the number of interactions divided by [n]. *)

type 'a t

val make : protocol:'a Protocol.t -> init:'a array -> rng:Prng.t -> 'a t
(** [make ~protocol ~init ~rng] starts a simulation from configuration
    [init] (copied; length must equal [protocol.n]) under the paper's
    uniform ordered-pair scheduler. *)

val make_with :
  sampler:(Prng.t -> int * int) -> protocol:'a Protocol.t -> init:'a array -> rng:Prng.t -> 'a t
(** Like {!make} but with a custom scheduler: [sampler] must return an
    ordered pair of distinct agent indices in [0, n); {!Topology.sampler}
    provides non-complete interaction graphs. *)

val protocol : 'a t -> 'a Protocol.t
val n : 'a t -> int

val step : 'a t -> unit
(** Execute one interaction. *)

val run : 'a t -> int -> unit
(** [run sim k] executes [k] interactions. *)

val interactions : 'a t -> int
(** Interactions executed so far. *)

val parallel_time : 'a t -> float
(** [interactions / n]. *)

val ranking_correct : 'a t -> bool
(** Ranks observed are exactly a permutation of [1..n]. *)

val leader_correct : 'a t -> bool
(** Exactly one agent observes as leader. *)

val leader_count : 'a t -> int
val ranked_agents : 'a t -> int

val monitor_updates : 'a t -> int
(** Correctness-monitor re-checks so far (see {!Monitor.updates}). *)

val state : 'a t -> int -> 'a
(** [state sim i] is agent [i]'s current state. *)

val inject : 'a t -> int -> 'a -> unit
(** [inject sim i s] overwrites agent [i]'s state with [s] — a transient
    fault. Correctness monitoring is kept consistent. Raises
    [Invalid_argument] when [i] is outside [0, n) — the same contract as
    [Count_sim.inject], so fault-injection drivers behave identically on
    both engines. *)

val corrupt : 'a t -> rng:Prng.t -> fraction:float -> (Prng.t -> 'a) -> int
(** [corrupt sim ~rng ~fraction gen] injects [gen rng] into a uniformly
    chosen [fraction] of the agents (at least one if [fraction > 0]);
    returns the number of corrupted agents. Raises [Invalid_argument]
    when [fraction] is outside [0,1] (NaN included). *)

val snapshot : 'a t -> 'a array
(** Copy of the current configuration. *)

val fold_states : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b

val last_pair : 'a t -> (int * int) option
(** The (initiator, responder) indices of the most recent interaction. *)
