(** Incremental correctness monitoring.

    Rescanning all [n] agents after every interaction would make convergence
    detection Θ(n) per step. A monitor instead maintains multiset counts of
    the observed ranks and of the leader bit, updated in O(1) when an agent's
    state changes, so the runner can test correctness after every single
    interaction at constant cost.

    Correctness follows the paper's definitions:
    - {e ranking} (SSR): for each rank in [1..n] exactly one agent observes
      that rank (this forces every agent to be ranked);
    - {e leader election} (SSLE): exactly one agent observes as leader. *)

type 'a t

val create : 'a Protocol.t -> 'a array -> 'a t
(** [create protocol population] scans the initial population once. The
    array is only read; the monitor keeps no reference to it. Pass [[||]]
    for an empty monitor to be filled with {!add} (the count-based engine
    accounts agents through its state multiset). *)

val update : 'a t -> old_state:'a -> new_state:'a -> unit
(** Report that one agent moved from [old_state] to [new_state]. *)

val add : 'a t -> 'a -> unit
(** Account one more agent observing [state] (multiset view; [update] is
    [remove] followed by [add]). *)

val remove : 'a t -> 'a -> unit
(** Account one fewer agent observing [state]. *)

val ranking_correct : 'a t -> bool
val leader_correct : 'a t -> bool

val leader_count : 'a t -> int
val ranked_agents : 'a t -> int
(** Number of agents currently observing some rank (with multiplicity). *)

val distinct_singleton_ranks : 'a t -> int
(** Number of ranks in [1..n] held by exactly one agent. *)

val updates : 'a t -> int
(** Re-check counter: total {!add}/{!remove} operations processed
    (an {!update} counts as two). Scraped by the telemetry layer via
    [Exec.stats]; a plain increment, so it costs nothing to keep. *)
