type 'a t = {
  states : 'a array;
  normalize : 'a -> 'a;
  equal : 'a -> 'a -> bool;
  buckets : (int, int list) Hashtbl.t;  (** [Hashtbl.hash state] -> candidate indices *)
}

let lookup t s =
  let rec scan = function
    | [] -> None
    | i :: rest -> if t.equal t.states.(i) s then Some i else scan rest
  in
  scan (Option.value ~default:[] (Hashtbl.find_opt t.buckets (Hashtbl.hash s)))

let of_enumerable (e : _ Engine.Enumerable.t) =
  let states = Array.of_list e.Engine.Enumerable.states in
  let t =
    {
      states;
      normalize = e.Engine.Enumerable.normalize;
      equal = e.Engine.Enumerable.protocol.Engine.Protocol.equal;
      buckets = Hashtbl.create (2 * Array.length states);
    }
  in
  Array.iteri
    (fun i s ->
      if not (t.equal (t.normalize s) s) then
        invalid_arg
          (Format.asprintf "Statespace: normalize is not the identity on declared state %a"
             e.Engine.Enumerable.protocol.Engine.Protocol.pp s);
      (match lookup t s with
      | Some j ->
          invalid_arg
            (Format.asprintf "Statespace: declared states %d and %d are duplicates (%a)" j i
               e.Engine.Enumerable.protocol.Engine.Protocol.pp s)
      | None -> ());
      let h = Hashtbl.hash s in
      Hashtbl.replace t.buckets h (i :: Option.value ~default:[] (Hashtbl.find_opt t.buckets h)))
    states;
  t

let size t = Array.length t.states

let state t i = t.states.(i)

let states t = t.states

let index t s =
  let s = t.normalize s in
  match lookup t s with
  | Some i -> Some i
  | None ->
      (* The normalized representative may be structurally different from
         the stored one for states outside the declared space; fall back to
         a linear [equal] scan so that escapes are reported only for
         genuinely undeclared states, never for hashing artifacts. *)
      let n = Array.length t.states in
      let rec scan i = if i >= n then None else if t.equal t.states.(i) s then Some i else scan (i + 1) in
      scan 0
