(** Orchestrates the four analyses for a protocol instance.

    Stage order: [state-count] (declared closed form vs. enumeration vs.
    the matching Table 1 row), [closure] and [invariant-lint] (one scan,
    {!Closure}), [silence] ({!Silence_scan}), [model-check]
    ({!Model_check}). An exception inside a stage becomes that stage's
    failure — an analyzer crash must never read as a pass — and a
    descriptor that violates the {!Statespace} contract fails fast with a
    single [state-count] stage. *)

val default_max_configs : int
(** 200_000 — comfortably covers the [*_small] registry instances at
    [n <= 4] while keeping any single model check under a few seconds. *)

val analyze_enumerable :
  pool:Engine.Pool.t ->
  max_configs:int ->
  key:string ->
  table1:bool ->
  'a Engine.Enumerable.t ->
  Report.t
(** Analyze one descriptor directly (used by tests). *)

val analyze_entry :
  pool:Engine.Pool.t -> max_configs:int -> n:int -> Registry.entry -> Report.t

val analyze_all :
  pool:Engine.Pool.t -> max_configs:int -> ns:int list -> Registry.entry list -> Report.t list
(** Every entry at every population size, in catalogue order. *)
