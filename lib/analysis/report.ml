type status = Pass | Fail | Skip

type stage = {
  stage : string;
  status : status;
  metrics : (string * string) list;
  findings : string list;
}

type t = {
  key : string;
  protocol : string;
  n : int;
  expectation : string;
  note : string option;
  stages : stage list;
}

let pass ?(metrics = []) stage = { stage; status = Pass; metrics; findings = [] }

let skip ~reason stage = { stage; status = Skip; metrics = []; findings = [ reason ] }

let max_findings = 10

let finish ?(metrics = []) ~findings ~total stage =
  let findings =
    if total > max_findings then
      findings @ [ Printf.sprintf "... and %d more" (total - max_findings) ]
    else findings
  in
  { stage; status = (if total = 0 then Pass else Fail); metrics; findings }

let status_ok = function Pass | Skip -> true | Fail -> false

let ok t = List.for_all (fun s -> status_ok s.status) t.stages

let all_ok = List.for_all ok

let string_of_status = function Pass -> "pass" | Fail -> "FAIL" | Skip -> "skip"

let pp_stage fmt s =
  Format.fprintf fmt "@[<v 2>%-14s %s" s.stage (string_of_status s.status);
  if s.metrics <> [] then
    Format.fprintf fmt "  (%s)"
      (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) s.metrics));
  List.iter (fun f -> Format.fprintf fmt "@,- %s" f) s.findings;
  Format.fprintf fmt "@]"

let pp fmt t =
  Format.fprintf fmt "@[<v 2>%s: %s  [n=%d, %s]%s" t.key t.protocol t.n t.expectation
    (match t.note with None -> "" | Some note -> "  -- " ^ note);
  List.iter (fun s -> Format.fprintf fmt "@,%a" pp_stage s) t.stages;
  Format.fprintf fmt "@]"

let pp_summary fmt reports =
  let total = List.length reports in
  let failed = List.filter (fun r -> not (ok r)) reports in
  if failed = [] then Format.fprintf fmt "all %d protocol instances pass@." total
  else
    Format.fprintf fmt "%d/%d protocol instances FAIL: %s@." (List.length failed) total
      (String.concat ", " (List.map (fun r -> Printf.sprintf "%s(n=%d)" r.key r.n) failed))

(* --- JSON ------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_list items = "[" ^ String.concat "," items ^ "]"

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields) ^ "}"

let stage_to_json s =
  json_obj
    [
      ("stage", json_string s.stage);
      ("status", json_string (string_of_status s.status));
      ("metrics", json_obj (List.map (fun (k, v) -> (k, json_string v)) s.metrics));
      ("findings", json_list (List.map json_string s.findings));
    ]

let to_json t =
  json_obj
    ([
       ("key", json_string t.key);
       ("protocol", json_string t.protocol);
       ("n", string_of_int t.n);
       ("expectation", json_string t.expectation);
     ]
    @ (match t.note with None -> [] | Some note -> [ ("note", json_string note) ])
    @ [
        ("ok", if ok t then "true" else "false");
        ("stages", json_list (List.map stage_to_json t.stages));
      ])

let list_to_json reports =
  json_obj
    [
      ("ok", if all_ok reports then "true" else "false");
      ("reports", json_list (List.map to_json reports));
    ]
