(** Exhaustive small-population model checking.

    For population sizes where the configuration space [C(s + n - 1, n)]
    fits the budget, builds the {e complete} configuration graph — nodes
    are admissible multisets over the declared states, edges are single
    interactions, with every synthetic-coin outcome of every applicable
    ordered state pair — and decides the declared stabilization property
    of {e every} initial configuration at once via the graph's bottom
    strongly connected components (iterative Tarjan):

    - {e silent-stabilizing}: every bottom SCC is a singleton (hence
      absorbing, hence silent) satisfying [correct] — so from any
      configuration the protocol reaches, with probability 1 under the
      uniform scheduler, a silent correct configuration and stays there.
      This is the paper's SSR/SSLE guarantee (Theorem 4.6 for
      Optimal-Silent-SSR) verified exactly at small [n];
    - {e stabilizing}: every configuration in every bottom SCC satisfies
      [correct] (states may churn, correctness is permanent);
    - {e loosely-stabilizing}: every bottom SCC contains a [correct]
      configuration (correctness recurs infinitely often).

    Also verifies that the admissible region is transition-closed. The
    pair-outcome table, per-configuration correctness flags and successor
    lists are built in parallel over the {!Engine.Pool}; Tarjan runs
    sequentially. Budget overruns produce a [Skip], not a failure. *)

val run : pool:Engine.Pool.t -> max_configs:int -> 'a Engine.Enumerable.t -> 'a Statespace.t -> Report.stage
