(** Exhaustive small-population model checking.

    For population sizes where the configuration space [C(s + n - 1, n)]
    fits the budget, builds the {e complete} configuration graph — nodes
    are admissible multisets over the declared states, edges are single
    interactions, with every synthetic-coin outcome of every applicable
    ordered state pair — and decides the declared stabilization property
    of {e every} initial configuration at once via the graph's bottom
    strongly connected components (iterative Tarjan):

    - {e silent-stabilizing}: every bottom SCC is a singleton (hence
      absorbing, hence silent) satisfying [correct] — so from any
      configuration the protocol reaches, with probability 1 under the
      uniform scheduler, a silent correct configuration and stays there.
      This is the paper's SSR/SSLE guarantee (Theorem 4.6 for
      Optimal-Silent-SSR) verified exactly at small [n];
    - {e stabilizing}: every configuration in every bottom SCC satisfies
      [correct] (states may churn, correctness is permanent);
    - {e loosely-stabilizing}: every bottom SCC contains a [correct]
      configuration (correctness recurs infinitely often).

    Also verifies that the admissible region is transition-closed. The
    pair-outcome table, per-configuration correctness flags and successor
    lists are built in parallel over the {!Engine.Pool}; Tarjan runs
    sequentially. Budget overruns produce a [Skip], not a failure. *)

val gate :
  max_configs:int -> 'a Engine.Enumerable.t -> 'a Statespace.t -> [ `Run | `Skip of Report.stage ]
(** Decide up front whether the configuration space fits the budget. The
    driver uses this to ask the shared {!Relation} scan to retain its
    Θ(s²) pair-outcome index table only when the check will actually run. *)

val check :
  pool:Engine.Pool.t -> relation:'a Relation.t -> 'a Engine.Enumerable.t -> 'a Statespace.t -> Report.stage
(** Run the check against an already-scanned relation (must have been
    scanned with [keep_tables:true]; raises [Invalid_argument] otherwise). *)

val run : pool:Engine.Pool.t -> max_configs:int -> 'a Engine.Enumerable.t -> 'a Statespace.t -> Report.stage
(** [gate] + a fresh relation scan + [check] — for callers that do not
    share the scan with the closure stage. *)
