(** Interned declared state space of an {!Engine.Enumerable} descriptor.

    Assigns each declared state a dense index [0 .. size-1] and answers
    membership queries for arbitrary states (after {!Engine.Enumerable}
    normalization) in expected O(1) via polymorphic hashing, with
    [protocol.equal] resolving collisions. Construction validates the
    descriptor's contract: the declared list is duplicate-free and
    [normalize] is the identity on it ([Invalid_argument] otherwise).

    The structure is immutable after construction, so it may be shared
    freely across {!Engine.Pool} worker domains. *)

type 'a t

val of_enumerable : 'a Engine.Enumerable.t -> 'a t
val size : 'a t -> int

val state : 'a t -> int -> 'a
(** The declared state at an index. *)

val states : 'a t -> 'a array
(** All declared states, in index order. Do not mutate. *)

val index : 'a t -> 'a -> int option
(** [index t s] is the index of [normalize s] in the declared space, or
    [None] — an {e escape} — if the state is undeclared. Robust against
    normalized states that are [equal] but not structurally equal to their
    stored representative (falls back to a linear scan before reporting an
    escape). *)
