let pp_config (p : _ Engine.Protocol.t) fmt config =
  Format.fprintf fmt "[%s]"
    (String.concat ", "
       (List.map
          (fun (s, m) ->
            if m = 1 then Format.asprintf "%a" p.Engine.Protocol.pp s
            else Format.asprintf "%d %a" m p.Engine.Protocol.pp s)
          (Engine.Silence.distinct_states p.Engine.Protocol.equal config)))

let run ~max_configs (e : _ Engine.Enumerable.t) space =
  let p = e.Engine.Enumerable.protocol in
  let n = p.Engine.Protocol.n in
  let s = Statespace.size space in
  if not p.Engine.Protocol.deterministic then
    Report.skip ~reason:"randomized protocol: silence is undefined (Engine.Silence)" "silence"
  else
    match Configs.count ~states:s ~n with
    | Some total when total <= max_configs ->
        let silent = ref 0 and admissible = ref 0 in
        let findings = ref [] and violation_count = ref 0 in
        Configs.iter ~states:s ~n (fun idx ->
            let config = Array.map (Statespace.state space) idx in
            if e.Engine.Enumerable.admissible config then begin
              incr admissible;
              if Engine.Silence.configuration_is_silent p config then begin
                incr silent;
                if not (e.Engine.Enumerable.correct config) then begin
                  incr violation_count;
                  if List.length !findings < Report.max_findings then
                    findings :=
                      Format.asprintf "silent but incorrect: %a" (pp_config p) config :: !findings
                end
              end
            end);
        let findings = List.rev !findings in
        (* A silent configuration that is not correct is stuck wrong forever,
           under any expectation. A silent-stabilizing protocol additionally
           must have somewhere silent to stabilize to. *)
        let missing_target =
          e.Engine.Enumerable.expectation = Engine.Enumerable.Silent_stabilizing && !silent = 0
        in
        let findings =
          if missing_target then
            findings @ [ "expectation is silent-stabilizing but no silent configuration exists" ]
          else findings
        in
        let total_findings = !violation_count + if missing_target then 1 else 0 in
        Report.finish
          ~metrics:
            [
              ("configs", string_of_int !admissible);
              ("silent", string_of_int !silent);
            ]
          ~findings ~total:total_findings "silence"
    | _ ->
        Report.skip
          ~reason:
            (Printf.sprintf "configuration space exceeds budget (%d states, budget %d configs)" s
               max_configs)
          "silence"
