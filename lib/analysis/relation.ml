let pp_trace fmt trace =
  match trace with
  | [] -> Format.pp_print_string fmt "no draws"
  | _ ->
      Format.fprintf fmt "draws %s"
        (String.concat ";" (List.map (fun (c, b) -> Printf.sprintf "%d/%d" c b) trace))

type row = {
  outcomes : int;
  escapes : string list;
  escape_count : int;
  first_escape : string option;  (* "(a, b)" of the row's first escaping pair *)
  violations : string list;
  violation_count : int;
  table : (int * int) list array option;  (* per responder; meaningless rows with escapes *)
}

let scan_row (e : _ Engine.Enumerable.t) space ~keep_tables i =
  let p = e.Engine.Enumerable.protocol in
  let s = Statespace.size space in
  let a = Statespace.state space i in
  let outcomes = ref 0 in
  let escapes = ref [] and escape_count = ref 0 in
  let first_escape = ref None in
  let violations = ref [] and violation_count = ref 0 in
  let table = if keep_tables then Some (Array.make s []) else None in
  let cap = Report.max_findings in
  let record count findings msg = begin
    incr count;
    if List.length !findings < cap then findings := msg () :: !findings
  end in
  for j = 0 to s - 1 do
    let b = Statespace.state space j in
    let outs =
      Coins.enumerate ~max_draws:e.Engine.Enumerable.max_draws (fun rng ->
          p.Engine.Protocol.transition rng (Statespace.state space i) b)
    in
    if p.Engine.Protocol.deterministic then begin
      match outs with
      | [ { Coins.trace = []; _ } ] -> ()
      | _ ->
          record escape_count escapes (fun () ->
              Format.asprintf "(%a, %a): protocol claims deterministic but drew randomness"
                p.Engine.Protocol.pp a p.Engine.Protocol.pp b)
    end;
    let indexed = ref [] in
    List.iter
      (fun { Coins.value = a', b'; trace } ->
        incr outcomes;
        let side tag out =
          let idx = Statespace.index space out in
          (match idx with
          | Some _ -> ()
          | None ->
              if !first_escape = None then
                first_escape :=
                  Some (Format.asprintf "(%a, %a)" p.Engine.Protocol.pp a p.Engine.Protocol.pp b);
              record escape_count escapes (fun () ->
                  Format.asprintf "(%a, %a) -%s-> %s %a: escapes the declared space (%a)"
                    p.Engine.Protocol.pp a p.Engine.Protocol.pp b
                    (Format.asprintf "%a" pp_trace trace)
                    tag p.Engine.Protocol.pp out p.Engine.Protocol.pp out));
          List.iter
            (fun inv ->
              if not (inv.Engine.Enumerable.holds out) then
                record violation_count violations (fun () ->
                    Format.asprintf "invariant %S broken by (%a, %a) -> %s %a (%a)"
                      inv.Engine.Enumerable.iname p.Engine.Protocol.pp a p.Engine.Protocol.pp b
                      tag p.Engine.Protocol.pp out pp_trace trace))
            e.Engine.Enumerable.invariants;
          idx
        in
        let ia = side "initiator" a' in
        let ib = side "responder" b' in
        match (ia, ib) with
        | Some ia, Some ib -> indexed := (ia, ib) :: !indexed
        | _ -> ())
      outs;
    Option.iter (fun t -> t.(j) <- List.sort_uniq compare !indexed) table
  done;
  {
    outcomes = !outcomes;
    escapes = List.rev !escapes;
    escape_count = !escape_count;
    first_escape = !first_escape;
    violations = List.rev !violations;
    violation_count = !violation_count;
    table;
  }

type 'a t = {
  closure : Report.stage;
  lint : Report.stage;
  tables : (int * int) list array array option;
  escape_pair : string option;
  outcomes : int;
}

let cap_concat lists = List.filteri (fun i _ -> i < Report.max_findings) (List.concat lists)

let scan ~pool ~keep_tables (e : _ Engine.Enumerable.t) space =
  let s = Statespace.size space in
  (* Declared states must satisfy the invariants themselves: a transition
     output equal to a declared state is otherwise vacuously fine. *)
  let base_violations =
    List.concat_map
      (fun inv ->
        List.filter_map
          (fun st ->
            if inv.Engine.Enumerable.holds st then None
            else
              Some
                (Format.asprintf "invariant %S broken by declared state %a"
                   inv.Engine.Enumerable.iname e.Engine.Enumerable.protocol.Engine.Protocol.pp st))
          e.Engine.Enumerable.states)
      e.Engine.Enumerable.invariants
  in
  let rows = Engine.Pool.init pool s (scan_row e space ~keep_tables) in
  let rows = Array.to_list rows in
  let outcomes = List.fold_left (fun acc (r : row) -> acc + r.outcomes) 0 rows in
  let escape_count = List.fold_left (fun acc r -> acc + r.escape_count) 0 rows in
  let violation_count =
    List.length base_violations + List.fold_left (fun acc r -> acc + r.violation_count) 0 rows
  in
  let closure =
    Report.finish
      ~metrics:
        [ ("pairs", string_of_int (s * s)); ("outcomes", string_of_int outcomes) ]
      ~findings:(cap_concat (List.map (fun r -> r.escapes) rows))
      ~total:escape_count "closure"
  in
  let lint =
    Report.finish
      ~metrics:[ ("invariants", string_of_int (List.length e.Engine.Enumerable.invariants)) ]
      ~findings:(cap_concat (base_violations :: List.map (fun r -> r.violations) rows))
      ~total:violation_count "invariant-lint"
  in
  let escape_pair = List.find_map (fun r -> r.first_escape) rows in
  let tables =
    if keep_tables && escape_count = 0 then
      Some (Array.of_list (List.map (fun r -> Option.get r.table) rows))
    else None
  in
  { closure; lint; tables; escape_pair; outcomes }

let closure_stage t = t.closure
let lint_stage t = t.lint
let tables t = t.tables
let escape_pair t = t.escape_pair
let outcomes (t : _ t) = t.outcomes
