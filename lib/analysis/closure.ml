type row = {
  outcomes : int;
  escapes : string list;
  escape_count : int;
  violations : string list;
  violation_count : int;
}

let pp_trace fmt trace =
  match trace with
  | [] -> Format.pp_print_string fmt "no draws"
  | _ ->
      Format.fprintf fmt "draws %s"
        (String.concat ";" (List.map (fun (c, b) -> Printf.sprintf "%d/%d" c b) trace))

let scan_row (e : _ Engine.Enumerable.t) space i =
  let p = e.Engine.Enumerable.protocol in
  let s = Statespace.size space in
  let a = Statespace.state space i in
  let outcomes = ref 0 in
  let escapes = ref [] and escape_count = ref 0 in
  let violations = ref [] and violation_count = ref 0 in
  let cap = Report.max_findings in
  let record count findings msg = begin
    incr count;
    if List.length !findings < cap then findings := msg () :: !findings
  end in
  for j = 0 to s - 1 do
    let b = Statespace.state space j in
    let outs =
      Coins.enumerate ~max_draws:e.Engine.Enumerable.max_draws (fun rng ->
          p.Engine.Protocol.transition rng (Statespace.state space i) b)
    in
    if p.Engine.Protocol.deterministic then begin
      match outs with
      | [ { Coins.trace = []; _ } ] -> ()
      | _ ->
          record escape_count escapes (fun () ->
              Format.asprintf "(%a, %a): protocol claims deterministic but drew randomness"
                p.Engine.Protocol.pp a p.Engine.Protocol.pp b)
    end;
    List.iter
      (fun { Coins.value = a', b'; trace } ->
        incr outcomes;
        let side tag out =
          (match Statespace.index space out with
          | Some _ -> ()
          | None ->
              record escape_count escapes (fun () ->
                  Format.asprintf "(%a, %a) -%s-> %s %a: escapes the declared space (%a)"
                    p.Engine.Protocol.pp a p.Engine.Protocol.pp b
                    (Format.asprintf "%a" pp_trace trace)
                    tag p.Engine.Protocol.pp out p.Engine.Protocol.pp out));
          List.iter
            (fun inv ->
              if not (inv.Engine.Enumerable.holds out) then
                record violation_count violations (fun () ->
                    Format.asprintf "invariant %S broken by (%a, %a) -> %s %a (%a)"
                      inv.Engine.Enumerable.iname p.Engine.Protocol.pp a p.Engine.Protocol.pp b
                      tag p.Engine.Protocol.pp out pp_trace trace))
            e.Engine.Enumerable.invariants
        in
        side "initiator" a';
        side "responder" b')
      outs
  done;
  {
    outcomes = !outcomes;
    escapes = List.rev !escapes;
    escape_count = !escape_count;
    violations = List.rev !violations;
    violation_count = !violation_count;
  }

let cap_concat lists = List.filteri (fun i _ -> i < Report.max_findings) (List.concat lists)

let run ~pool (e : _ Engine.Enumerable.t) space =
  let s = Statespace.size space in
  (* Declared states must satisfy the invariants themselves: a transition
     output equal to a declared state is otherwise vacuously fine. *)
  let base_violations =
    List.concat_map
      (fun inv ->
        List.filter_map
          (fun st ->
            if inv.Engine.Enumerable.holds st then None
            else
              Some
                (Format.asprintf "invariant %S broken by declared state %a"
                   inv.Engine.Enumerable.iname e.Engine.Enumerable.protocol.Engine.Protocol.pp st))
          e.Engine.Enumerable.states)
      e.Engine.Enumerable.invariants
  in
  let rows = Engine.Pool.init pool s (scan_row e space) in
  let rows = Array.to_list rows in
  let outcomes = List.fold_left (fun acc r -> acc + r.outcomes) 0 rows in
  let escape_count = List.fold_left (fun acc r -> acc + r.escape_count) 0 rows in
  let violation_count =
    List.length base_violations + List.fold_left (fun acc r -> acc + r.violation_count) 0 rows
  in
  let closure_stage =
    Report.finish
      ~metrics:
        [ ("pairs", string_of_int (s * s)); ("outcomes", string_of_int outcomes) ]
      ~findings:(cap_concat (List.map (fun r -> r.escapes) rows))
      ~total:escape_count "closure"
  in
  let lint_stage =
    Report.finish
      ~metrics:[ ("invariants", string_of_int (List.length e.Engine.Enumerable.invariants)) ]
      ~findings:(cap_concat (base_violations :: List.map (fun r -> r.violations) rows))
      ~total:violation_count "invariant-lint"
  in
  (closure_stage, lint_stage)
