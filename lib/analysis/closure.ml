(* The scan itself lives in [Relation] so the model checker can reuse the
   same enumeration; this module keeps the two-stage closure/lint surface. *)

let run ~pool (e : _ Engine.Enumerable.t) space =
  let r = Relation.scan ~pool ~keep_tables:false e space in
  (Relation.closure_stage r, Relation.lint_stage r)
