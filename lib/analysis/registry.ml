type any = Any : 'a Engine.Enumerable.t -> any

type entry = {
  key : string;
  summary : string;
  table1 : bool;
  build : n:int -> any;
}

let entries =
  [
    {
      key = "silent_n_state";
      summary = "folklore n-state silent SSR (Section 2)";
      table1 = true;
      build = (fun ~n -> Any (Core.Silent_n_state.enumerable ~n));
    };
    {
      key = "baseline";
      summary = "initialized 2-state leader election (admissible: >= 1 leader)";
      table1 = false;
      build = (fun ~n -> Any (Core.Baseline.enumerable ~n));
    };
    {
      key = "optimal_silent";
      summary = "Optimal-Silent-SSR, tuned paper parameters (Table 1 row 2)";
      table1 = true;
      build = (fun ~n -> Any (Core.Optimal_silent.enumerable ~n ()));
    };
    {
      key = "optimal_silent_small";
      summary = "Optimal-Silent-SSR, reduced counters for exhaustive model checking";
      table1 = false;
      build =
        (fun ~n ->
          Any
            (Core.Optimal_silent.enumerable
               ~params:{ Core.Params.r_max = 2; d_max = 3; e_max = 3 }
               ~n ()));
    };
    {
      key = "sublinear";
      summary = "Sublinear-Time-SSR at H = 0 with analysis parameters (Protocols 5-6)";
      table1 = false;
      build = (fun ~n -> Any (Core.Sublinear.enumerable ~n ()));
    };
    {
      key = "loose";
      summary = "loosely-stabilizing LE, production timeout";
      table1 = false;
      build = (fun ~n -> Any (Core.Loose.enumerable ~n ~t_max:(Core.Loose.default_t_max ~upper_bound:n)));
    };
    {
      key = "loose_small";
      summary = "loosely-stabilizing LE, short timeout for exhaustive model checking";
      table1 = false;
      build = (fun ~n -> Any (Core.Loose.enumerable ~n ~t_max:4));
    };
    {
      key = "reset";
      summary = "Propagate-Reset overlay in isolation (Protocol 2 / Lemma 3.1)";
      table1 = false;
      build = (fun ~n -> Any (Core.Reset_probe.enumerable ~n ()));
    };
    {
      key = "reset_production";
      summary = "Propagate-Reset overlay at production counter scale (symbolic-only)";
      table1 = false;
      (* R_max = 60 ceil(ln n), D_max = 8 n at the n = 50 deployment point:
         642 states — far past the model checker's configuration budget at
         any n, so stabilization rests on the symbolic certificate. *)
      build = (fun ~n -> Any (Core.Reset_probe.enumerable ~r_max:240 ~d_max:400 ~n ()));
    };
  ]

let keys () = List.map (fun e -> e.key) entries

let find key = List.find_opt (fun e -> String.equal e.key key) entries
