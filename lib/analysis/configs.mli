(** Configurations as multisets of interned state indices.

    Agents are anonymous, so a configuration of [n] agents over [s]
    declared states is a multiset — canonically a {e nondecreasing} length-
    [n] array of indices in [0 .. s-1]. There are [C(s + n - 1, n)] of
    them, each packed into a single non-negative [int] key (mixed radix
    base [s]) for hashing during model checking. *)

val count : states:int -> n:int -> int option
(** [C(states + n - 1, n)], or [None] when it exceeds ~1e15 (the caller
    should skip exhaustive analysis long before that). *)

val keyable : states:int -> n:int -> bool
(** Whether [states]^[n] fits an [int], i.e. {!key} is injective. *)

val key : states:int -> int array -> int
(** Pack a sorted configuration into its unique key. *)

val iter : states:int -> n:int -> (int array -> unit) -> unit
(** Call [f] on every sorted configuration, in lexicographic order. The
    array is reused between calls — copy it to retain it. *)

val multiplicities : int array -> (int * int) list
(** [(state index, multiplicity)] pairs of a sorted configuration, in
    increasing index order. *)

val replace_pair : int array -> a:int -> b:int -> a':int -> b':int -> int array
(** The sorted successor configuration after one interaction takes an
    agent in state [a] and one in state [b] to [a'] and [b']. The input
    must contain [a] and [b] (with multiplicity 2 if [a = b]); the input
    is not mutated. *)
