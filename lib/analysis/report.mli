(** Analyzer verdicts, renderable as text or JSON.

    One report per protocol instance and population size; one stage record
    per check ([state-count], [closure], [invariant-lint], [silence],
    [model-check]). A stage either passes, fails with a capped list of
    human-readable findings (first counterexamples in deterministic scan
    order), or is skipped with a reason — skipping is not a failure:
    analyses are skipped exactly when they are undefined (silence of a
    randomized protocol) or over the configuration budget. *)

type status = Pass | Fail | Skip

type stage = {
  stage : string;
  status : status;
  metrics : (string * string) list;
  findings : string list;
}

type t = {
  key : string;  (** registry key, e.g. ["optimal_silent_small"] *)
  protocol : string;  (** [Protocol.name] *)
  n : int;
  expectation : string;
  note : string option;
  stages : stage list;
}

val pass : ?metrics:(string * string) list -> string -> stage
val skip : reason:string -> string -> stage

val max_findings : int
(** Findings retained per stage; the rest are summarized as a count. *)

val finish : ?metrics:(string * string) list -> findings:string list -> total:int -> string -> stage
(** [finish ~findings ~total stage] is a [Pass] when [total = 0], else a
    [Fail] carrying [findings] (already capped at {!max_findings} by the
    caller) plus an ellipsis line when [total] exceeds the cap. *)

val ok : t -> bool
(** No stage failed ([Skip] is acceptable). *)

val all_ok : t list -> bool
val string_of_status : status -> string
val pp : Format.formatter -> t -> unit
val pp_summary : Format.formatter -> t list -> unit
val to_json : t -> string
val list_to_json : t list -> string
