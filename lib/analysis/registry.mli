(** The analyzable protocol catalogue.

    Existentially packaged {!Engine.Enumerable} descriptors, keyed for the
    [analyze] CLI. Protocols whose production parameters make the
    configuration space exceed any reasonable model-checking budget appear
    twice: once at production parameters (closure, lint and — where
    available — Table 1 count cross-checks still run; model checking
    skips) and once as a [*_small] instance with reduced counters whose
    complete configuration graph fits small-[n] exhaustive analysis. *)

type any = Any : 'a Engine.Enumerable.t -> any

type entry = {
  key : string;  (** CLI name, e.g. ["optimal_silent_small"] *)
  summary : string;
  table1 : bool;
      (** cross-check the state count against the matching
          {!Core.State_space.table1_rows} row (requires production
          parameters) *)
  build : n:int -> any;
}

val entries : entry list
val keys : unit -> string list
val find : string -> entry option
