let count ~states ~n =
  (* C(states + n - 1, n), with a float guard against overflow *)
  let estimate =
    let rec go acc k =
      if k > n then acc
      else go (acc *. float_of_int (states + n - k) /. float_of_int k) (k + 1)
    in
    go 1.0 1
  in
  if estimate > 1e15 then None
  else begin
    let c = ref 1 in
    for k = 1 to n do
      (* ascending numerators keep every intermediate value integral:
         after step k the accumulator is exactly C(states - 1 + k, k) *)
      c := !c * (states - 1 + k) / k
    done;
    Some !c
  end

let key ~states config = Array.fold_left (fun acc i -> (acc * states) + i) 0 config

let keyable ~states ~n =
  let rec go acc k = if k = 0 then true else acc <= max_int / states && go (acc * states) (k - 1) in
  states > 0 && go 1 n

let iter ~states ~n f =
  let config = Array.make n 0 in
  let rec go pos lo =
    if pos = n then f config
    else
      for i = lo to states - 1 do
        config.(pos) <- i;
        go (pos + 1) i
      done
  in
  if n > 0 && states > 0 then go 0 0

let multiplicities config =
  let n = Array.length config in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n do
    let s = config.(!i) in
    let j = ref !i in
    while !j < n && config.(!j) = s do
      incr j
    done;
    acc := (s, !j - !i) :: !acc;
    i := !j
  done;
  List.rev !acc

let replace_pair config ~a ~b ~a' ~b' =
  let n = Array.length config in
  let out = Array.make n 0 in
  Array.blit config 0 out 0 n;
  let swap_one v v' =
    let rec find i = if out.(i) = v then i else find (i + 1) in
    out.(find 0) <- v'
  in
  swap_one a a';
  swap_one b b';
  Array.sort compare out;
  out
