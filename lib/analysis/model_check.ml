(* Iterative Tarjan over the configuration graph; returns the component id
   of every node and the component count. *)
let tarjan succs =
  let n = Array.length succs in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let comp = Array.make n (-1) in
  let ncomp = ref 0 in
  let next_index = ref 0 in
  let visit v =
    index.(v) <- !next_index;
    low.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true
  in
  let dfs = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      visit root;
      Stack.push (root, 0) dfs;
      while not (Stack.is_empty dfs) do
        let u, ci = Stack.pop dfs in
        if ci < Array.length succs.(u) then begin
          Stack.push (u, ci + 1) dfs;
          let v = succs.(u).(ci) in
          if index.(v) < 0 then begin
            visit v;
            Stack.push (v, 0) dfs
          end
          else if on_stack.(v) then low.(u) <- min low.(u) index.(v)
        end
        else begin
          if low.(u) = index.(u) then begin
            let rec pop_component () =
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              comp.(w) <- !ncomp;
              if w <> u then pop_component ()
            in
            pop_component ();
            incr ncomp
          end;
          match Stack.top_opt dfs with
          | Some (parent, _) -> low.(parent) <- min low.(parent) low.(u)
          | None -> ()
        end
      done
    end
  done;
  (comp, !ncomp)

(* Successor-configuration ids of one configuration, from the pair-outcome
   table. An interaction needs an ordered pair of *distinct agents*, so a
   same-state pair applies only at multiplicity >= 2. Key misses mean the
   admissible region is not transition-closed (the enumeration covers every
   configuration over the declared states). *)
let successors ~states ~pair_rows ~key_to_id idx =
  let mults = Configs.multiplicities idx in
  let out = ref [] in
  let misses = ref [] in
  List.iter
    (fun (a, ma) ->
      List.iter
        (fun (b, mb) ->
          if (a <> b && ma >= 1 && mb >= 1) || (a = b && ma >= 2 && mb >= 2) then
            List.iter
              (fun (a', b') ->
                let next = Configs.replace_pair idx ~a ~b ~a' ~b' in
                match Hashtbl.find_opt key_to_id (Configs.key ~states next) with
                | Some id' -> out := id' :: !out
                | None -> misses := next :: !misses)
              pair_rows.(a).(b))
        mults)
    mults;
  (Array.of_list (List.sort_uniq compare !out), !misses)

(* Budget gate, separated from the check so the driver can decide whether
   the shared pair-outcome relation ({!Relation}) must retain its Θ(s²)
   index table before running the scan. *)
let gate ~max_configs (e : _ Engine.Enumerable.t) space =
  let n = e.Engine.Enumerable.protocol.Engine.Protocol.n in
  let s = Statespace.size space in
  match Configs.count ~states:s ~n with
  | None ->
      `Skip
        (Report.skip ~reason:(Printf.sprintf "configuration count overflows (%d states)" s)
           "model-check")
  | Some unrestricted when unrestricted > max_configs || not (Configs.keyable ~states:s ~n) ->
      `Skip
        (Report.skip
           ~reason:
             (Printf.sprintf "%d configurations exceed budget %d (raise with --max-configs)"
                unrestricted max_configs)
           "model-check")
  | Some _ -> `Run

let check ~pool ~relation (e : _ Engine.Enumerable.t) space =
  let p = e.Engine.Enumerable.protocol in
  let n = p.Engine.Protocol.n in
  let s = Statespace.size space in
  (* The pair-outcome table comes from the shared relation scan. An escape
     from the declared space is closure's to report in detail, but model
     checking is only sound without it, so bail out. *)
  match (Relation.escape_pair relation, Relation.tables relation) with
  | Some pair, _ ->
      Report.finish
        ~findings:[ "state-space escape at " ^ pair ^ " (see closure stage)" ]
        ~total:1 "model-check"
  | None, None -> invalid_arg "Model_check.check: relation was scanned without keep_tables"
  | None, Some pair_rows -> begin
          (* Enumerate admissible configurations and intern them by key. *)
          let rev_configs = ref [] and count = ref 0 in
          let key_to_id = Hashtbl.create 1024 in
          Configs.iter ~states:s ~n (fun idx ->
              let config = Array.map (Statespace.state space) idx in
              if e.Engine.Enumerable.admissible config then begin
                let idx = Array.copy idx in
                Hashtbl.replace key_to_id (Configs.key ~states:s idx) !count;
                rev_configs := idx :: !rev_configs;
                incr count
              end);
          let configs = Array.of_list (List.rev !rev_configs) in
          let total = Array.length configs in
          let materialize id = Array.map (Statespace.state space) configs.(id) in
          let pp_cfg id = Format.asprintf "%a" (Silence_scan.pp_config p) (materialize id) in
          let correct_flags =
            Engine.Pool.init pool total (fun id -> e.Engine.Enumerable.correct (materialize id))
          in
          let succ_results =
            Engine.Pool.init pool total (fun id ->
                successors ~states:s ~pair_rows ~key_to_id configs.(id))
          in
          let succs = Array.map fst succ_results in
          let inadmissible =
            Array.to_list succ_results
            |> List.concat_map (fun (_, misses) -> misses)
          in
          if inadmissible <> [] then
            Report.finish
              ~metrics:[ ("configs", string_of_int total) ]
              ~findings:
                [
                  Printf.sprintf
                    "admissible region is not transition-closed (%d escaping edges), e.g. -> %s"
                    (List.length inadmissible)
                    (Format.asprintf "%a" (Silence_scan.pp_config p)
                       (Array.map (Statespace.state space) (List.hd inadmissible)));
                ]
              ~total:1 "model-check"
          else begin
            let comp, ncomp = tarjan succs in
            let bottom = Array.make ncomp true in
            let comp_size = Array.make ncomp 0 in
            let comp_correct = Array.make ncomp false in
            Array.iteri
              (fun u vs ->
                comp_size.(comp.(u)) <- comp_size.(comp.(u)) + 1;
                if correct_flags.(u) then comp_correct.(comp.(u)) <- true;
                Array.iter (fun v -> if comp.(v) <> comp.(u) then bottom.(comp.(u)) <- false) vs)
              succs;
            let bottom_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bottom in
            let findings = ref [] and total_findings = ref 0 in
            let record msg =
              incr total_findings;
              if List.length !findings < Report.max_findings then findings := msg () :: !findings
            in
            let reported = Array.make ncomp false in
            Array.iteri
              (fun u _ ->
                let c = comp.(u) in
                if bottom.(c) then
                  match e.Engine.Enumerable.expectation with
                  | Engine.Enumerable.Silent_stabilizing ->
                      (* a singleton bottom SCC is absorbing, hence silent;
                         a larger one keeps moving forever *)
                      if comp_size.(c) > 1 then begin
                        if not reported.(c) then begin
                          reported.(c) <- true;
                          record (fun () ->
                              Printf.sprintf "bottom SCC of %d configurations is not silent, e.g. %s"
                                comp_size.(c) (pp_cfg u))
                        end
                      end
                      else if not correct_flags.(u) then
                        record (fun () -> "silent bottom configuration is incorrect: " ^ pp_cfg u)
                  | Engine.Enumerable.Stabilizing ->
                      if not correct_flags.(u) then
                        record (fun () -> "incorrect configuration recurs forever: " ^ pp_cfg u)
                  | Engine.Enumerable.Loosely_stabilizing ->
                      if (not comp_correct.(c)) && not reported.(c) then begin
                        reported.(c) <- true;
                        record (fun () ->
                            Printf.sprintf "bottom SCC of %d configurations never correct, e.g. %s"
                              comp_size.(c) (pp_cfg u))
                      end)
              succs;
            let correct_count =
              Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 correct_flags
            in
            Report.finish
              ~metrics:
                [
                  ("configs", string_of_int total);
                  ("sccs", string_of_int ncomp);
                  ("bottom", string_of_int bottom_count);
                  ("correct", string_of_int correct_count);
                ]
              ~findings:(List.rev !findings) ~total:!total_findings "model-check"
          end
    end

let run ~pool ~max_configs (e : _ Engine.Enumerable.t) space =
  match gate ~max_configs e space with
  | `Skip stage -> stage
  | `Run ->
      let relation = Relation.scan ~pool ~keep_tables:true e space in
      check ~pool ~relation e space
