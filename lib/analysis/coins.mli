(** Exact enumeration of a randomized function's synthetic-coin tree.

    The paper's protocols only ever draw {e bounded} randomness inside a
    transition (coin flips, small uniform integers, random name bits), so a
    single transition explores a finite choice tree. [enumerate] walks that
    tree exhaustively by replaying the function under a {e scripted}
    {!Prng.t}: the first run answers every draw with choice 0 and records
    the [(choice, bound)] trace; each subsequent run increments the
    rightmost incrementable choice (an odometer over the discovered
    bounds), until every leaf has been visited. Nothing is sampled — the
    result is the complete list of possible return values, each with the
    exact choice sequence that produces it.

    Correct for any [f] whose draw bounds depend only on earlier choices
    (true of any deterministic function of the generator). *)

type 'r outcome = {
  value : 'r;
  trace : (int * int) list;  (** the [(choice, bound)] draws, in order *)
}

exception Too_many_draws of { draws : int; max_draws : int }
exception Too_many_outcomes of { limit : int }

val enumerate : ?limit:int -> max_draws:int -> (Prng.t -> 'r) -> 'r outcome list
(** [enumerate ~max_draws f] is every possible outcome of [f]. A run
    drawing more than [max_draws] times raises {!Too_many_draws} (the
    declared bound from {!Engine.Enumerable} is a promise worth checking);
    more than [limit] (default 65536) total outcomes raises
    {!Too_many_outcomes}. A deterministic [f] yields exactly one outcome
    with an empty trace. *)
