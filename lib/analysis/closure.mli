(** Closure and invariant lint over the declared state space.

    Applies the transition to {e every} ordered pair of declared states —
    including equal pairs, since two distinct agents may share a state —
    and, for randomized protocols, to every synthetic-coin outcome of each
    pair (exact enumeration via {!Coins}). Two stages come out of the one
    scan:

    - {b closure}: every output state must normalize into the declared
      space (the machine-checked content of a Table 1 state count); a
      protocol claiming [deterministic] must not draw and must produce a
      single outcome per pair.
    - {b invariant-lint}: every declared invariant must hold on every
      declared state and on every output. A failure reports the first
      (scan-order minimal) counterexample: pair, coin trace, output.

    The scan is embarrassingly parallel and is distributed over the
    {!Engine.Pool} by initiator-state row. *)

val run : pool:Engine.Pool.t -> 'a Engine.Enumerable.t -> 'a Statespace.t -> Report.stage * Report.stage
(** [(closure stage, invariant-lint stage)]. *)
