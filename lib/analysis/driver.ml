let default_max_configs = 200_000

let guard stage f =
  try f ()
  with exn ->
    Report.finish ~findings:[ "exception: " ^ Printexc.to_string exn ] ~total:1 stage

let count_stage ~table1 (e : _ Engine.Enumerable.t) space =
  let actual = Statespace.size space in
  let metrics = ref [ ("states", string_of_int actual) ] in
  let findings = ref [] in
  (match e.Engine.Enumerable.declared_count with
  | Some declared when declared <> actual ->
      findings :=
        Printf.sprintf "declared closed-form count %d <> enumerated count %d" declared actual
        :: !findings
  | Some _ | None -> ());
  (if table1 then begin
     let name = e.Engine.Enumerable.protocol.Engine.Protocol.name in
     let n = e.Engine.Enumerable.protocol.Engine.Protocol.n in
     match
       List.find_opt
         (fun (row : Core.State_space.row) -> String.equal row.Core.State_space.protocol name)
         (Core.State_space.table1_rows ~n)
     with
     | Some { Core.State_space.exact = Some expected; _ } ->
         metrics := ("table1", string_of_int expected) :: !metrics;
         if expected <> actual then
           findings :=
             Printf.sprintf "Table 1 count %d <> enumerated count %d" expected actual :: !findings
     | Some { Core.State_space.exact = None; _ } | None ->
         findings :=
           Printf.sprintf "no exact Table 1 row matches protocol %S" name :: !findings
   end);
  Report.finish ~metrics:(List.rev !metrics) ~findings:(List.rev !findings)
    ~total:(List.length !findings) "state-count"

let analyze_enumerable ~pool ~max_configs ~key ~table1 (e : _ Engine.Enumerable.t) =
  let p = e.Engine.Enumerable.protocol in
  let base =
    {
      Report.key;
      protocol = p.Engine.Protocol.name;
      n = p.Engine.Protocol.n;
      expectation =
        Format.asprintf "%a" Engine.Enumerable.pp_expectation e.Engine.Enumerable.expectation;
      note = e.Engine.Enumerable.note;
      stages = [];
    }
  in
  match (try Ok (Statespace.of_enumerable e) with exn -> Error exn) with
  | Error exn ->
      (* the descriptor violates the Statespace contract (duplicates,
         non-identity normalize): nothing downstream is meaningful *)
      {
        base with
        Report.stages =
          [
            Report.finish ~findings:[ "exception: " ^ Printexc.to_string exn ] ~total:1
              "state-count";
          ];
      }
  | Ok space ->
      let counts = guard "state-count" (fun () -> count_stage ~table1 e space) in
      (* One pair-outcome scan feeds both the closure/lint stages and the
         model checker; the Θ(s²) index table is retained only when the
         model check's budget gate says it will run. *)
      (* The gate itself can raise (combinatorics overflow on huge spaces);
         treat that as a failed model-check stage, not a crashed run, so the
         remaining instances still get analyzed. *)
      let mc_gate =
        try Model_check.gate ~max_configs e space
        with exn ->
          `Skip
            (Report.finish
               ~findings:[ "exception: " ^ Printexc.to_string exn ]
               ~total:1 "model-check")
      in
      let keep_tables = mc_gate = `Run in
      let relation =
        try Ok (Relation.scan ~pool ~keep_tables e space) with exn -> Error exn
      in
      let closure, lint =
        match relation with
        | Ok r -> (Relation.closure_stage r, Relation.lint_stage r)
        | Error exn ->
            let findings = [ "exception: " ^ Printexc.to_string exn ] in
            let failed = Report.finish ~findings ~total:1 in
            (failed "closure", failed "invariant-lint")
      in
      let silence = guard "silence" (fun () -> Silence_scan.run ~max_configs e space) in
      let mc =
        match (mc_gate, relation) with
        | `Skip stage, _ -> stage
        | `Run, Ok r -> guard "model-check" (fun () -> Model_check.check ~pool ~relation:r e space)
        | `Run, Error exn ->
            Report.finish
              ~findings:[ "exception: " ^ Printexc.to_string exn ]
              ~total:1 "model-check"
      in
      { base with Report.stages = [ counts; closure; lint; silence; mc ] }

let analyze_entry ~pool ~max_configs ~n (entry : Registry.entry) =
  match (try Ok (entry.Registry.build ~n) with exn -> Error exn) with
  | Ok (Registry.Any e) ->
      analyze_enumerable ~pool ~max_configs ~key:entry.Registry.key ~table1:entry.Registry.table1 e
  | Error exn ->
      {
        Report.key = entry.Registry.key;
        protocol = "?";
        n;
        expectation = "?";
        note = None;
        stages =
          [
            Report.finish ~findings:[ "descriptor build failed: " ^ Printexc.to_string exn ]
              ~total:1 "build";
          ];
      }

let analyze_all ~pool ~max_configs ~ns entries =
  List.concat_map
    (fun entry -> List.map (fun n -> analyze_entry ~pool ~max_configs ~n entry) ns)
    entries
