type 'r outcome = { value : 'r; trace : (int * int) list }

exception Too_many_draws of { draws : int; max_draws : int }
exception Too_many_outcomes of { limit : int }

(* Next script in lexicographic order: bump the rightmost position of the
   trace whose choice can still be incremented below its bound, drop
   everything to its right (the suffix draws are re-decided by the next
   run). [None] when the trace is the last leaf of the choice tree. *)
let next_script trace =
  let rec bump = function
    | [] -> None
    | (choice, bound) :: rest when choice + 1 < bound -> Some (List.rev ((choice + 1, bound) :: rest))
    | _ :: rest -> bump rest
  in
  Option.map (List.map fst) (bump (List.rev trace))

let enumerate ?(limit = 65_536) ~max_draws f =
  let rec go script acc count =
    if count >= limit then raise (Too_many_outcomes { limit });
    let rng = Prng.scripted script in
    let value = f rng in
    let trace = Prng.script_trace rng in
    if List.length trace > max_draws then
      raise (Too_many_draws { draws = List.length trace; max_draws });
    let acc = { value; trace } :: acc in
    match next_script trace with
    | None -> List.rev acc
    | Some script -> go script acc (count + 1)
  in
  go [] [] 0
