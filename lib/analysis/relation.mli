(** Shared pair-outcome relation over a declared state space.

    Both the closure/invariant-lint scan ({!Closure}) and the exhaustive
    model checker ({!Model_check}) quantify over the same object: the
    outcomes of the transition applied to {e every} ordered pair of
    declared states, with every synthetic-coin outcome enumerated exactly
    ({!Coins}). Historically each stage ran its own enumeration; [Relation]
    runs the scan {e once} and serves both consumers, which halves the
    dominant cost of analyzing a protocol instance (the scan is Θ(s²)
    transition enumerations) and guarantees the stages agree on what the
    relation is.

    The scan is distributed over the {!Engine.Pool} by initiator-state
    row. Findings (escapes from the declared space, invariant violations,
    broken determinism claims) are summarized per row exactly as the
    closure stage reports them; the index-pair table the model checker
    consumes is retained only on request ([keep_tables]), because it costs
    Θ(s²) memory while the closure summary is O(findings) — the driver
    requests it exactly when the model check will actually run (small
    spaces), so large-space analyses keep their flat memory profile. *)

type 'a t

val scan :
  pool:Engine.Pool.t -> keep_tables:bool -> 'a Engine.Enumerable.t -> 'a Statespace.t -> 'a t
(** Enumerate every ordered pair of declared states once. *)

val closure_stage : 'a t -> Report.stage
(** The [closure] stage: outputs must normalize into the declared space; a
    [deterministic] claim must mean no draws and a single outcome. *)

val lint_stage : 'a t -> Report.stage
(** The [invariant-lint] stage: declared invariants hold on every declared
    state and every transition output. *)

val tables : 'a t -> (int * int) list array array option
(** [tables r] is the deduplicated output-index pairs of every ordered
    input pair — [Some] iff the scan was run with [keep_tables:true] and
    no output escaped the declared space (the table is meaningless
    otherwise). *)

val escape_pair : 'a t -> string option
(** First (scan-order) input pair with an escaping outcome, formatted
    ["(a, b)"] — the model checker's bail-out message. *)

val outcomes : 'a t -> int
(** Total transition outcomes enumerated across all pairs. *)
