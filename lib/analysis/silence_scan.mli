(** Silence classification (deterministic protocols).

    Enumerates every admissible configuration over the declared state
    space and classifies it with {!Engine.Silence.configuration_is_silent}
    (no applicable ordered-pair transition changes anything — the paper's
    Section 2 notion behind Observation 2.2). Certifies {e silent ⇒
    correct}: a silent incorrect configuration is a permanent failure
    under every expectation. For silent-stabilizing protocols additionally
    requires that at least one silent configuration exists; for the
    loosely-stabilizing protocol the [silent = 0] metric is itself the
    interesting certificate (the protocol is non-silent).

    Skipped — not failed — for randomized protocols (silence is undefined
    without a single successor) and when the configuration count exceeds
    the budget. *)

val run : max_configs:int -> 'a Engine.Enumerable.t -> 'a Statespace.t -> Report.stage

val pp_config : 'a Engine.Protocol.t -> Format.formatter -> 'a array -> unit
(** Multiset rendering, e.g. ["[3 F(timer=2), L(timer=4)]"]. *)
