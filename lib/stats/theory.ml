let harmonic k =
  let rec loop i acc = if i > k then acc else loop (i + 1) (acc +. (1.0 /. float_of_int i)) in
  loop 1 0.0

let log2 x = log x /. log 2.0

let name_bits n =
  if n < 2 then invalid_arg "Theory.name_bits: need n >= 2";
  3 * int_of_float (Float.ceil (log2 (float_of_int n)))

let coupon_collector_time n =
  (* Each interaction involves 2 of n agents; expected interactions until all
     have appeared is (n/2)·H_n; parallel time divides by n. *)
  harmonic n /. 2.0

let epidemic_time n =
  let nf = float_of_int n in
  nf /. (nf -. 1.0) *. harmonic (n - 1)

let bounded_epidemic_bound ~n ~k =
  let nf = float_of_int n in
  float_of_int k *. (nf ** (1.0 /. float_of_int k))

let slow_leader_election_time n =
  let nf = float_of_int n in
  let pairs_total = nf *. (nf -. 1.0) /. 2.0 in
  let rec loop k acc =
    if k > n then acc
    else begin
      let kf = float_of_int k in
      loop (k + 1) (acc +. (pairs_total /. (kf *. (kf -. 1.0) /. 2.0)))
    end
  in
  loop 2 0.0 /. nf

let silent_lb_tail ~n ~alpha = 0.5 *. (float_of_int n ** (-3.0 *. alpha))

let quadratic_barrier_time n =
  let nf = float_of_int n in
  (nf -. 1.0) *. (nf -. 1.0) /. 2.0
