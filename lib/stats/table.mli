(** Plain-text table rendering for experiment reports.

    The benchmark harness prints paper-shaped tables (rows per population
    size, columns per statistic); this module handles column alignment. *)

type t

val create : header:string list -> t
(** [create ~header] starts a table with the given column names. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Rows shorter than the header are padded
    with empty cells; longer rows extend the table width. *)

val add_separator : t -> unit
(** Appends a horizontal rule row. *)

val render : t -> string
(** Render with aligned columns and a rule under the header. *)

val print : t -> unit
(** [print t] writes [render t] to standard output followed by a newline. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float cell, default 2 decimals. *)

val cell_int : int -> string
