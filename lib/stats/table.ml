type row = Cells of string list | Separator

type t = { header : string list; mutable rows : row list (* reversed *) }

let create ~header = { header; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let width_of_rows header rows =
  let ncols =
    List.fold_left
      (fun acc row -> match row with Cells cs -> max acc (List.length cs) | Separator -> acc)
      (List.length header) rows
  in
  let widths = Array.make ncols 0 in
  let account cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  account header;
  List.iter (function Cells cs -> account cs | Separator -> ()) rows;
  widths

let render_cells widths cells =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun i w ->
      let cell = match List.nth_opt cells i with Some c -> c | None -> "" in
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf cell;
      Buffer.add_string buf (String.make (w - String.length cell) ' '))
    widths;
  (* Trim trailing spaces. *)
  let s = Buffer.contents buf in
  let len = ref (String.length s) in
  while !len > 0 && s.[!len - 1] = ' ' do
    decr len
  done;
  String.sub s 0 !len

let render t =
  let rows = List.rev t.rows in
  let widths = width_of_rows t.header rows in
  let total = Array.fold_left ( + ) 0 widths + (2 * (Array.length widths - 1)) in
  let rule = String.make (max total 1) '-' in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (render_cells widths t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      match row with
      | Cells cs -> Buffer.add_string buf (render_cells widths cs)
      | Separator -> Buffer.add_string buf rule)
    rows;
  Buffer.contents buf

let print t = print_endline (render t)

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_int n = string_of_int n
