(** Descriptive statistics over samples of floats.

    Used by the experiment harness to summarize per-trial stabilization times
    into the "expected time" and "WHP time" columns of the paper's Table 1
    (mean and upper quantiles respectively). *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p90 : float;  (** 90th percentile *)
  p95 : float;  (** 95th percentile *)
}

val of_array : float array -> t
(** [of_array xs] summarizes a non-empty sample. Raises
    [Invalid_argument] on an empty array. *)

val of_list : float list -> t

val mean : float array -> float
val variance : float array -> float
(** Sample variance (n-1 denominator); 0 for singleton samples. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], linear interpolation between order
    statistics. Does not mutate [xs]. *)

val sem : float array -> float
(** Standard error of the mean. *)

val ci95_halfwidth : float array -> float
(** Half-width of a normal-approximation 95% confidence interval for the
    mean (1.96 standard errors). *)

val pp : Format.formatter -> t -> unit
