(** Least-squares fits used to check asymptotic scaling shapes.

    The experiments validate claims like "Silent-n-state-SSR takes Θ(n²)
    time" by fitting [log time = slope · log n + intercept] over a sweep of
    population sizes and comparing the slope against the predicted exponent
    (2 here, 1 for Optimal-Silent-SSR, 1/(H+1) for Sublinear-Time-SSR). *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination *)
}

val linear : (float * float) list -> fit
(** [linear pts] is the ordinary least-squares line through [pts].
    Requires at least two points with distinct x values. *)

val log_log : (float * float) list -> fit
(** [log_log pts] fits [ln y = slope · ln x + intercept]; the slope estimates
    the polynomial scaling exponent. All coordinates must be positive. *)

val semilog_x : (float * float) list -> fit
(** [semilog_x pts] fits [y = slope · ln x + intercept]; a good fit with
    positive slope indicates Θ(log n) scaling. *)

val pp_fit : Format.formatter -> fit -> unit
