(** Fixed-width histograms, used to look at stabilization-time distributions
    (e.g. the heavy tail predicted by Observation 2.2 for silent protocols). *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [lo, hi) with [bins] equal-width bins plus
    an underflow and an overflow bin. Requires [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit

val of_samples : lo:float -> hi:float -> bins:int -> float array -> t

val count : t -> int
(** Total number of samples added (including under/overflow). *)

val bin_count : t -> int -> int
(** [bin_count t i] for [i] in [0, bins). *)

val underflow : t -> int
val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** [bin_bounds t i] is the half-open interval covered by bin [i]. *)

val fraction_at_least : t -> float -> float
(** [fraction_at_least t x] is the empirical fraction of samples >= [x]
    (computed from exact samples retained internally, not from bins). *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one line per bin. *)
