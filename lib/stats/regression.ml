type fit = { slope : float; intercept : float; r2 : float }

let linear pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 pts in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 pts in
  let mx = sx /. nf and my = sy /. nf in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. ((x -. mx) *. (x -. mx))) 0.0 pts in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0.0 pts in
  if sxx = 0.0 then invalid_arg "Regression.linear: x values are all equal";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_tot = List.fold_left (fun acc (_, y) -> acc +. ((y -. my) *. (y -. my))) 0.0 pts in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        acc +. (e *. e))
      0.0 pts
  in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let log_log pts =
  let mapped =
    List.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then invalid_arg "Regression.log_log: non-positive point";
        (log x, log y))
      pts
  in
  linear mapped

let semilog_x pts =
  let mapped =
    List.map
      (fun (x, y) ->
        if x <= 0.0 then invalid_arg "Regression.semilog_x: non-positive x";
        (log x, y))
      pts
  in
  linear mapped

let pp_fit fmt f =
  Format.fprintf fmt "slope=%.3f intercept=%.3f r2=%.4f" f.slope f.intercept f.r2
