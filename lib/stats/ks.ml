let statistic xs ys =
  let n1 = Array.length xs and n2 = Array.length ys in
  if n1 = 0 || n2 = 0 then invalid_arg "Ks.statistic: empty sample";
  let xs = Array.copy xs and ys = Array.copy ys in
  Array.sort compare xs;
  Array.sort compare ys;
  (* Sweep the merged order; the CDF gap can only change at sample points. *)
  let rec sweep i j best =
    if i >= n1 || j >= n2 then begin
      (* the remaining tail pins one CDF at its current value vs 1.0 *)
      let fi = float_of_int i /. float_of_int n1 in
      let fj = float_of_int j /. float_of_int n2 in
      Float.max best (Float.abs (fi -. fj))
    end
    else begin
      let i' = if xs.(i) <= ys.(j) then i + 1 else i in
      let j' = if ys.(j) <= xs.(i) then j + 1 else j in
      let fi = float_of_int i' /. float_of_int n1 in
      let fj = float_of_int j' /. float_of_int n2 in
      sweep i' j' (Float.max best (Float.abs (fi -. fj)))
    end
  in
  sweep 0 0 0.0

type alpha = P10 | P05 | P01

let coefficient = function P10 -> 1.224 | P05 -> 1.358 | P01 -> 1.628

let critical_value ~alpha ~n1 ~n2 =
  if n1 <= 0 || n2 <= 0 then invalid_arg "Ks.critical_value: non-positive sample size";
  let n1 = float_of_int n1 and n2 = float_of_int n2 in
  coefficient alpha *. sqrt ((n1 +. n2) /. (n1 *. n2))

let same_distribution ?(alpha = P01) xs ys =
  statistic xs ys < critical_value ~alpha ~n1:(Array.length xs) ~n2:(Array.length ys)
