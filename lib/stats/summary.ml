type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p95 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.variance: empty sample";
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.quantile: empty sample";
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Summary.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let sem xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.sem: empty sample";
  stddev xs /. sqrt (float_of_int n)

let ci95_halfwidth xs = 1.96 *. sem xs

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = quantile xs 0.5;
    p90 = quantile xs 0.9;
    p95 = quantile xs 0.95;
  }

let of_list xs = of_array (Array.of_list xs)

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.3f sd=%.3f med=%.3f p95=%.3f [%.3f, %.3f]"
    t.count t.mean t.stddev t.median t.p95 t.min t.max
