(** Two-sample Kolmogorov–Smirnov test.

    Used to check that two samples come from the same distribution — the
    repository's strongest cross-validation: the count-based engine's
    stabilization times must match the per-interaction engine's not just in
    mean but {e in law}, since both sample the same Markov chain. *)

val statistic : float array -> float array -> float
(** [statistic xs ys] is D = sup over t of |F_xs(t) − F_ys(t)|, the maximum
    distance between the two empirical CDFs. Both samples must be
    non-empty. Inputs are not mutated. *)

type alpha = P10 | P05 | P01

val critical_value : alpha:alpha -> n1:int -> n2:int -> float
(** Asymptotic rejection threshold c(α)·√((n1+n2)/(n1·n2)) with
    c(0.10) = 1.224, c(0.05) = 1.358, c(0.01) = 1.628. *)

val same_distribution : ?alpha:alpha -> float array -> float array -> bool
(** [same_distribution xs ys] is [true] when the KS test does {e not}
    reject equality of distributions at level [alpha] (default {!P01}). *)
