(** Closed-form quantities from the paper, used as reference curves next to
    measured values in the experiment reports. *)

val harmonic : int -> float
(** [harmonic k] is H_k = sum_{i=1}^{k} 1/i; [harmonic 0 = 0]. *)

val log2 : float -> float

val name_bits : int -> int
(** [name_bits n] is the paper's name length 3·⌈log₂ n⌉ (Section 5.1). *)

val coupon_collector_time : int -> float
(** Expected parallel time for every one of [n] agents to take part in at
    least one interaction ≈ coupon collector: (n·H_n)/(2n) interactions per
    agent pair convention used in the paper; returned in parallel time. *)

val epidemic_time : int -> float
(** Expected parallel time of the two-way epidemic process on [n] agents:
    ≈ ln n (more precisely, (n/(n-1))·H_{n-1} ≈ ln n + γ). *)

val bounded_epidemic_bound : n:int -> k:int -> float
(** The paper's bound shape E[τ_k] = O(k·n^{1/k}); this returns k·n^{1/k}
    itself (constant 1), for shape comparison. *)

val slow_leader_election_time : int -> float
(** Expected parallel time for the one-transition leader election
    L,L → L,F to go from n leaders to 1:
    sum_{k=2}^{n} C(n,2)/C(k,2) interactions, divided by n. *)

val silent_lb_tail : n:int -> alpha:float -> float
(** Observation 2.2: lower bound (1/2)·n^{-3α} on the probability that a
    silent protocol needs at least α·n·ln n parallel time. *)

val quadratic_barrier_time : int -> float
(** Reference curve for the Ω(n²) worst case of Silent-n-state-SSR:
    (n-1) bottleneck meetings of a specific pair, each needing expected
    C(n,2) interactions ⇒ ≈ (n-1)·(n-1)/2 parallel time. *)
