type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable under : int;
  mutable over : int;
  mutable samples : float list;  (* retained for exact tail queries *)
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  { lo; hi; bins = Array.make bins 0; under = 0; over = 0; samples = []; total = 0 }

let nbins t = Array.length t.bins

let add t x =
  t.total <- t.total + 1;
  t.samples <- x :: t.samples;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let w = (t.hi -. t.lo) /. float_of_int (nbins t) in
    let i = int_of_float ((x -. t.lo) /. w) in
    let i = min i (nbins t - 1) in
    t.bins.(i) <- t.bins.(i) + 1
  end

let of_samples ~lo ~hi ~bins xs =
  let t = create ~lo ~hi ~bins in
  Array.iter (add t) xs;
  t

let count t = t.total

let bin_count t i =
  if i < 0 || i >= nbins t then invalid_arg "Histogram.bin_count: bin index out of range";
  t.bins.(i)

let underflow t = t.under
let overflow t = t.over

let bin_bounds t i =
  if i < 0 || i >= nbins t then invalid_arg "Histogram.bin_bounds: bin index out of range";
  let w = (t.hi -. t.lo) /. float_of_int (nbins t) in
  (t.lo +. (w *. float_of_int i), t.lo +. (w *. float_of_int (i + 1)))

let fraction_at_least t x =
  if t.total = 0 then 0.0
  else begin
    let hits = List.fold_left (fun acc s -> if s >= x then acc + 1 else acc) 0 t.samples in
    float_of_int hits /. float_of_int t.total
  end

let render ?(width = 50) t =
  let maxc = Array.fold_left max 1 t.bins in
  let buf = Buffer.create 512 in
  for i = 0 to nbins t - 1 do
    let lo, hi = bin_bounds t i in
    let bar_len = t.bins.(i) * width / maxc in
    Buffer.add_string buf (Printf.sprintf "[%8.2f, %8.2f) %6d %s\n" lo hi t.bins.(i) (String.make bar_len '#'))
  done;
  if t.under > 0 then Buffer.add_string buf (Printf.sprintf "underflow %d\n" t.under);
  if t.over > 0 then Buffer.add_string buf (Printf.sprintf "overflow  %d\n" t.over);
  Buffer.contents buf
